"""End-to-end tests of grid observability: traces, telemetry, and summaries.

The issue's acceptance scenario lives here: a fault-injected parallel grid is
run with ``--trace`` semantics and the resulting trace file must attribute
every retry, worker crash, and cell timeout to its cell — including spans
whose worker died mid-flight (SIGKILL, ``os._exit``) and therefore had to be
synthesized by the supervisor — and a clean rerun's trace must show the cells
being served from the result cache.

Worker spans travel back over the answer pipe, so the round-trip is exercised
under both ``fork`` and ``spawn`` start methods.  Parallel tests use builtin
workload ids only (custom registrations do not exist inside ``spawn``
workers).
"""

import multiprocessing

import pytest

from repro.grid import GridSpec, run_grid
from repro.grid.cli import main as grid_main
from repro.grid.spec import GridError, register_workload
from repro.obs.__main__ import main as obs_main
from repro.obs.summary import summarize
from repro.obs.trace import read_trace
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload

#: 2 algorithms x 1 workload x 2 cost models, resolvable inside any worker.
PARALLEL_SPEC = GridSpec(
    name="obs-grid",
    algorithms=("hillclimb", "navathe"),
    workloads=("telemetry:small",),
    cost_models=("hdd", "mainmemory"),
)

AVAILABLE_START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


def _obs_workload() -> Workload:
    schema = TableSchema(
        "obs_table",
        [Column("a", 4), Column("b", 8), Column("c", 60), Column("d", 16)],
        200_000,
    )
    return Workload(
        schema,
        [Query("Q1", ["a", "b"]), Query("Q2", ["c"]), Query("Q3", ["a", "d"])],
        name="obs",
    )


try:
    register_workload("obs:w", _obs_workload)
except GridError:
    pass

#: Serial-path spec over the fast registered workload.
SERIAL_SPEC = GridSpec(
    name="obs-serial",
    algorithms=("hillclimb", "navathe"),
    workloads=("obs:w",),
    cost_models=("hdd",),
)


class TestWorkerSpanRoundTrip:
    """Worker-side spans must reach the supervisor's trace over the pipe."""

    @pytest.mark.parametrize("method", AVAILABLE_START_METHODS)
    def test_clean_parallel_run_round_trips_spans(self, tmp_path, method):
        trace_path = tmp_path / "trace.jsonl"
        report = run_grid(
            PARALLEL_SPEC,
            cache_dir=str(tmp_path / "cache"),
            workers=2,
            mp_start_method=method,
            trace=str(trace_path),
        )
        assert report.ok

        digest = summarize(str(trace_path))
        labels = {cell.label for cell in PARALLEL_SPEC.cells()}
        assert set(digest.cells) == labels
        for cell in digest.cells.values():
            assert cell.attempts == 1
            assert cell.status == "ok"
            assert cell.wall > 0.0
        assert list(digest.phases) == [
            "grid.resolve", "grid.cache-scan", "grid.execute",
        ]

        # The workers' *inner* spans came over the pipe too, re-parented
        # under the supervisor's execute phase via their grid.cell span.
        _, records = read_trace(str(trace_path))
        spans = [r for r in records if r.get("type") == "span"]
        compute = [s for s in spans if s["name"] == "algorithm.compute"]
        assert len(compute) == len(labels)
        cell_ids = {s["id"] for s in spans if s["name"] == "grid.cell"}
        assert all(s["parent"] in cell_ids for s in compute)

        # Worker metrics deltas were merged into the run's final record.
        assert digest.counter("grid.cells.computed") == len(labels)
        assert digest.counter("cost.evaluator.memo.misses") > 0

    def test_serial_run_traces_the_same_tree_shape(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        report = run_grid(
            SERIAL_SPEC, cache_dir=str(tmp_path / "cache"), trace=str(trace_path)
        )
        assert report.ok
        digest = summarize(str(trace_path))
        assert set(digest.cells) == {cell.label for cell in SERIAL_SPEC.cells()}
        assert all(c.status == "ok" for c in digest.cells.values())


class TestFaultAttribution:
    """The acceptance scenario: every fault attributed to its cell."""

    FAULTS = {
        "hillclimb/telemetry:small/hdd": {
            "kind": "transient", "attempts": 2, "message": "flaky cell",
        },
        "navathe/telemetry:small/hdd": {"kind": "die"},
        "hillclimb/telemetry:small/mainmemory": {"kind": "hang", "seconds": 30},
    }

    @pytest.mark.parametrize("method", AVAILABLE_START_METHODS)
    def test_trace_attributes_every_retry_crash_and_timeout(
        self, tmp_path, method
    ):
        first_trace = tmp_path / "faulty.jsonl"
        report = run_grid(
            PARALLEL_SPEC,
            cache_dir=str(tmp_path / "cache"),
            workers=2,
            mp_start_method=method,
            retries=2,
            retry_backoff=0.0,
            cell_timeout=1.0,
            faults=self.FAULTS,
            trace=str(first_trace),
        )
        assert report.failed == 2

        digest = summarize(str(first_trace))

        # Transient cell: two failing attempts shipped their spans from the
        # worker, the third succeeded; both retries attributed.
        flaky = digest.cells["hillclimb/telemetry:small/hdd"]
        assert flaky.attempts == 3
        assert flaky.retries == 2
        assert flaky.status == "ok"

        # Crashed cell: the worker died mid-span (os._exit), so all three
        # attempt spans are supervisor-synthesized with the exit code.
        dead = digest.cells["navathe/telemetry:small/hdd"]
        assert dead.attempts == 3
        assert dead.crashes == 3
        assert dead.retries == 2
        assert dead.status == "error"
        assert any("exit code 86" in error for error in dead.errors)

        # Hung cell: SIGKILLed at the timeout on every attempt.
        hung = digest.cells["hillclimb/telemetry:small/mainmemory"]
        assert hung.attempts == 3
        assert hung.timeouts == 3
        assert hung.retries == 2
        assert hung.status == "error"

        # Clean cell: untouched by the faults.
        clean = digest.cells["navathe/telemetry:small/mainmemory"]
        assert clean.attempts == 1 and clean.status == "ok"

        assert {c.label for c in digest.failed_cells} == {
            "navathe/telemetry:small/hdd",
            "hillclimb/telemetry:small/mainmemory",
        }

        # Run-level fault counters agree with the per-cell attribution.
        assert digest.counter("grid.retry.attempts") == 6
        assert digest.counter("grid.worker.crashes") == 3
        assert digest.counter("grid.cell.timeouts") == 3
        assert report.telemetry.retries == 6
        assert report.telemetry.worker_crashes == 3
        assert report.telemetry.cell_timeouts == 3

        # Synthesized spans are marked as such in the raw trace.
        _, records = read_trace(str(first_trace))
        synthesized = [
            r
            for r in records
            if r.get("type") == "span" and (r.get("attrs") or {}).get("synthesized")
        ]
        assert len(synthesized) == 6  # 3 crashes + 3 timeouts

        # A clean rerun recomputes only the quarantined cells and its trace
        # records the successful cells coming from the result cache.
        rerun_trace = tmp_path / "rerun.jsonl"
        rerun = run_grid(
            PARALLEL_SPEC, cache_dir=str(tmp_path / "cache"), trace=str(rerun_trace)
        )
        assert rerun.ok and rerun.cache_hits == 2
        rerun_digest = summarize(str(rerun_trace))
        assert rerun_digest.cache_hits == 2
        assert rerun_digest.counter("grid.cache.hits") == 2

        final_trace = tmp_path / "final.jsonl"
        final = run_grid(
            PARALLEL_SPEC, cache_dir=str(tmp_path / "cache"), trace=str(final_trace)
        )
        assert final.hit_rate == 1.0
        assert summarize(str(final_trace)).cache_hits == 4


class TestRunTelemetry:
    def test_telemetry_attached_without_tracing(self, tmp_path):
        report = run_grid(SERIAL_SPEC, cache_dir=str(tmp_path / "cache"))
        telemetry = report.telemetry
        assert telemetry is not None
        assert telemetry.run == SERIAL_SPEC.name
        assert telemetry.cells_total == 2
        assert telemetry.cells_computed == 2
        assert telemetry.cache_stores == 2
        assert telemetry.trace_path is None
        assert telemetry.wall_seconds > 0.0
        assert set(telemetry.phases) == {
            "grid.resolve", "grid.cache-scan", "grid.execute",
        }
        described = telemetry.describe()
        assert "telemetry:" in described
        assert "2 computed" in described
        assert "trace:" not in described

    def test_telemetry_counts_cache_hits_on_resume(self, tmp_path):
        run_grid(SERIAL_SPEC, cache_dir=str(tmp_path / "cache"))
        again = run_grid(SERIAL_SPEC, cache_dir=str(tmp_path / "cache"))
        assert again.telemetry.cells_cached == 2
        assert again.telemetry.cells_computed == 0

    def test_to_dict_is_json_shaped(self, tmp_path):
        import json

        report = run_grid(SERIAL_SPEC, cache_dir=str(tmp_path / "cache"))
        payload = report.telemetry.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["cells"]["total"] == 2


class TestCacheFailureSurfacing:
    """Satellite: cache I/O failure counters reach the report and the CLI."""

    def test_store_failures_surface_on_the_report(self, tmp_path, monkeypatch):
        from repro.grid import cache as cache_module

        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_module.os, "replace", explode)
        with pytest.warns(RuntimeWarning):
            report = run_grid(SERIAL_SPEC, cache_dir=str(tmp_path / "cache"))
        assert report.ok
        assert report.cache_store_failures == 2
        assert report.cache_load_failures == 0
        assert report.cache_degraded
        assert report.telemetry.cache_store_failures == 2
        assert "degraded: 2 store / 0 load I/O failures" in report.telemetry.describe()

    def test_cli_warns_on_degraded_cache(self, tmp_path, monkeypatch, capsys):
        from repro.grid import cache as cache_module

        def explode(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(cache_module.os, "replace", explode)
        args = [
            "--grid", "tiny",
            "--algorithms", "hillclimb",
            "--workloads", "telemetry:small",
            "--cost-models", "hdd",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        with pytest.warns(RuntimeWarning):
            assert grid_main(args) == 0
        err = capsys.readouterr().err
        assert "result cache degraded: 1 store / 0 load I/O failures" in err


class TestCliTraceFlag:
    ARGS = [
        "--grid", "tiny",
        "--algorithms", "hillclimb",
        "--workloads", "telemetry:small",
        "--cost-models", "hdd",
    ]

    def test_trace_flag_writes_a_summarizable_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        args = self.ARGS + [
            "--cache-dir", str(tmp_path / "cache"), "--trace", str(trace_path),
        ]
        assert grid_main(args) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert str(trace_path) in out

        # The summary CLI parses what the grid CLI wrote.
        assert obs_main(["summary", str(trace_path)]) == 0
        summary_out = capsys.readouterr().out
        assert "run=tiny+custom" in summary_out
        assert "grid.execute" in summary_out
        assert "1 computed" in summary_out

    def test_resumed_run_trace_reports_cache_hits(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(self.ARGS + cache) == 0
        assert (
            grid_main(self.ARGS + cache + ["--trace", str(trace_path)]) == 0
        )
        capsys.readouterr()
        digest = summarize(str(trace_path))
        assert digest.cache_hits == 1
        assert digest.counter("grid.cache.hits") == 1
