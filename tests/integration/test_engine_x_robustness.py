"""Fault tolerance of the sqlite backend under the grid's supervisor.

Two failure families: an *environmental* fault (the engine's scratch
directory is unusable — simulated by pointing ``REPRO_ENGINE_X_TMPDIR`` at a
regular file, which breaks database creation even for root) and an *injected*
transient fault through :mod:`repro.grid.faults`.  In both cases the grid
quarantines instead of crashing, never caches the failure, and an interrupted
or fixed rerun retries exactly the sqlite cells.
"""

import pytest

from repro.engine_x.executor import SQLiteExecutor, TMPDIR_ENV_VAR
from repro.grid.runner import run_grid
from repro.grid.spec import GridError, GridSpec, register_workload
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


def _robust_workload(name: str) -> Workload:
    schema = TableSchema(
        f"{name}_table",
        [Column("a", 4), Column("b", 8), Column("c", 24)],
        50_000,
    )
    return Workload(
        schema,
        [Query("Q1", ["a", "b"]), Query("Q2", ["c"])],
        name=name,
    )


try:
    register_workload("exrobust:w", lambda: _robust_workload("exrobust"))
except GridError:
    pass

SPEC = GridSpec(
    name="sqlite-robust",
    algorithms=("hillclimb", "navathe"),
    workloads=("exrobust:w",),
    cost_models=("hdd",),
    backend="sqlite",
    measurement={"rows": 1_000},
)


@pytest.fixture
def broken_tmpdir(tmp_path, monkeypatch):
    """An unusable scratch location: a regular file where a directory must be.

    ``chmod`` tricks do not stop root, but ``mkstemp`` inside a regular file
    fails for every uid — the portable simulation of an unwritable temp dir.
    """
    decoy = tmp_path / "scratch"
    decoy.write_text("not a directory")
    monkeypatch.setenv(TMPDIR_ENV_VAR, str(decoy))
    return decoy


class TestUnusableScratchDirectory:
    def test_executor_constructor_raises(self, broken_tmpdir):
        workload = _robust_workload("ctor")
        from repro.core.partitioning import row_partitioning

        with pytest.raises(OSError):
            SQLiteExecutor(row_partitioning(workload.schema), rows=100)

    def test_cells_are_quarantined_not_crashed(self, broken_tmpdir, tmp_path):
        cache = tmp_path / "cache"
        report = run_grid(SPEC, cache_dir=str(cache))
        assert report.failed == 2 and report.computed == 0
        for result in report.failures:
            assert result.failure is not None
            assert "NotADirectoryError" in result.failure.error_type
        assert "Failures (quarantined cells)" in report.describe()

    def test_failures_never_cached_and_rerun_recovers(
        self, broken_tmpdir, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        first = run_grid(SPEC, cache_dir=str(cache))
        assert first.failed == 2

        # The environment is fixed: the very next run computes every cell
        # fresh — a failure must never be served from the cache.
        monkeypatch.delenv(TMPDIR_ENV_VAR)
        second = run_grid(SPEC, cache_dir=str(cache))
        assert second.failed == 0 and second.computed == 2
        assert all(result.sqlite is not None for result in second.results)

        # And now the cells are cached like any healthy sqlite cells.
        third = run_grid(SPEC, cache_dir=str(cache))
        assert third.cache_hits == 2


class TestInjectedFaults:
    def test_transient_sqlite_cell_recovers_with_retries(self, tmp_path):
        label = "hillclimb/exrobust:w/hdd [sqlite]"
        report = run_grid(
            SPEC,
            cache_dir=str(tmp_path),
            retries=2,
            retry_backoff=0.0,
            faults={label: {"kind": "transient", "attempts": 2,
                            "message": "flaky engine cell"}},
        )
        assert report.failed == 0
        flaky = next(r for r in report.results if r.cell.label == label)
        assert flaky.ok and flaky.attempts == 3
        assert flaky.sqlite is not None

    def test_exhausted_retries_quarantine_the_sqlite_cell(self, tmp_path):
        label = "navathe/exrobust:w/hdd [sqlite]"
        report = run_grid(
            SPEC,
            cache_dir=str(tmp_path),
            retries=1,
            retry_backoff=0.0,
            faults={label: {"kind": "transient", "attempts": 5,
                            "message": "still flaky"}},
        )
        assert report.failed == 1
        failed = next(r for r in report.results if r.cell.label == label)
        assert failed.failure is not None and failed.failure.attempts == 2
        # The healthy sibling cell completed and cached; a rerun without the
        # fault retries only the quarantined cell.
        clean = run_grid(SPEC, cache_dir=str(tmp_path))
        assert clean.failed == 0
        assert clean.cache_hits == 1 and clean.computed == 1
