"""Integration tests: the sqlite backend through the whole grid stack.

The acceptance path end to end: a sqlite grid run attaches engine sections
and agreement tables, sqlite cells cache and resume exactly like measured
ones (and invalidate on page-size / seed / scale changes), serial and
parallel runs agree byte for byte on the deterministic payload, the CLI
drives the whole thing, and ``LayoutAdvisor.validate_costs`` accepts
``backend="sqlite"``.

Agreement bounds here are structural (sections present, timings positive),
not rank-correlation floors: at tiny grid scales SQLite's fixed per-query
overhead can legitimately reorder close layouts (``docs/ENGINE_X.md``); the
decidable-by-construction ranking claims live in
``test_engine_x_differential.py``.
"""

import pytest

from repro.core.advisor import LayoutAdvisor
from repro.engine_x.validation import EngineValidationReport
from repro.grid.aggregate import (
    sqlite_agreement_rows,
    sqlite_agreement_summary_rows,
)
from repro.grid.cache import canonical_json, deterministic_payload
from repro.grid.cli import main as grid_main
from repro.grid.runner import run_grid
from repro.grid.spec import GridError, GridSpec, register_workload
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


def _engine_workload(name: str) -> Workload:
    schema = TableSchema(
        f"{name}_table",
        [Column("a", 4), Column("b", 8), Column("c", 40), Column("d", 16),
         Column("e", 8)],
        120_000,
    )
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=2.0),
            Query("Q2", ["c"]),
            Query("Q3", ["a", "d", "e"], weight=0.5),
            Query("Q4", ["b", "c", "e"]),
        ],
        name=name,
    )


for _name in ("ex_alpha", "ex_beta"):
    try:
        register_workload(f"engine:{_name}", lambda _n=_name: _engine_workload(_n))
    except GridError:
        pass

SQLITE_SPEC = GridSpec(
    name="sqlite-unit",
    algorithms=("hillclimb", "navathe"),
    workloads=("engine:ex_alpha", "engine:ex_beta"),
    cost_models=("hdd",),
    backend="sqlite",
    measurement={"rows": 2_000},
)


class TestSqliteGrid:
    def test_cells_carry_sqlite_sections(self):
        report = run_grid(SQLITE_SPEC, cache_dir=None)
        assert len(report.results) == 4
        for result in report.results:
            section = result.sqlite
            assert section is not None
            assert section["engine"] == "sqlite"
            assert section["rows"] == 2_000
            assert section["page_size"] == 4096
            assert section["predicted_seconds"] > 0
            assert section["rows_scanned"] > 0
            assert section["bytes_scanned"] > 0
            assert result.payload["timing"]["sqlite_seconds"] > 0
            assert len(result.payload["timing"]["sqlite_query_seconds"]) == 4
        rows = sqlite_agreement_rows(report.results)
        assert len(rows) == 4
        summary = sqlite_agreement_summary_rows(report.results)
        pooled = next(row for row in summary if row["algorithm"] == "(all)")
        assert -1.0 <= pooled["rank corr"] <= 1.0
        assert "Estimated vs SQLite engine agreement" in report.describe()

    def test_sqlite_runs_cache_and_resume(self, tmp_path):
        first = run_grid(SQLITE_SPEC, cache_dir=str(tmp_path))
        second = run_grid(SQLITE_SPEC, cache_dir=str(tmp_path))
        assert first.computed == 4 and second.cache_hits == 4
        for a, b in zip(first.results, second.results):
            assert canonical_json(a.payload).encode() == canonical_json(b.payload).encode()

    def test_page_size_seed_and_scale_invalidate_cells(self, tmp_path):
        run_grid(SQLITE_SPEC, cache_dir=str(tmp_path))
        repaged = SQLITE_SPEC.with_backend(
            "sqlite", {"rows": 2_000, "page_size": 8192}
        )
        assert run_grid(repaged, cache_dir=str(tmp_path)).computed == 4
        reseeded = SQLITE_SPEC.with_backend(
            "sqlite", {"rows": 2_000, "data_seed": 5}
        )
        assert run_grid(reseeded, cache_dir=str(tmp_path)).computed == 4
        rescaled = SQLITE_SPEC.with_backend("sqlite", {"rows": 3_000})
        assert run_grid(rescaled, cache_dir=str(tmp_path)).computed == 4
        # The original cells are untouched: a re-run is still fully cached.
        assert run_grid(SQLITE_SPEC, cache_dir=str(tmp_path)).cache_hits == 4

    def test_sqlite_and_measured_cells_never_share_cache_entries(self, tmp_path):
        run_grid(SQLITE_SPEC, cache_dir=str(tmp_path))
        measured = SQLITE_SPEC.with_backend("measured", {"rows": 2_000})
        assert run_grid(measured, cache_dir=str(tmp_path)).computed == 4

    def test_parallel_sqlite_run_matches_serial(self, tmp_path):
        serial = run_grid(SQLITE_SPEC, cache_dir=None, workers=1)
        parallel = run_grid(SQLITE_SPEC, cache_dir=str(tmp_path), workers=2)
        assert parallel.computed == 4
        for s, p in zip(serial.results, parallel.results):
            assert s.cell == p.cell
            det_s = canonical_json(deterministic_payload(s.payload))
            det_p = canonical_json(deterministic_payload(p.payload))
            assert det_s.encode() == det_p.encode()

    def test_every_cost_model_participates(self):
        # Unlike the measured backend, the engine comparison is a ranking,
        # meaningful for models without disk characteristics too.
        spec = GridSpec(
            name="sqlite-mm",
            algorithms=("hillclimb",),
            workloads=("engine:ex_alpha",),
            cost_models=("mainmemory",),
            backend="sqlite",
            measurement={"rows": 1_000},
        )
        report = run_grid(spec, cache_dir=None)
        section = report.results[0].sqlite
        assert section is not None and section["supported"] is True


class TestSqliteCli:
    def test_cli_runs_caches_and_resumes(self, tmp_path, capsys):
        argv = [
            "--grid", "tiny", "--algorithms", "hillclimb",
            "--workloads", "engine:ex_alpha",
            "--backend", "sqlite", "--measured-rows", "1000",
            "--sqlite-page-size", "8192",
            "--cache-dir", str(tmp_path),
        ]
        assert grid_main(argv) == 0
        first = capsys.readouterr().out
        assert "Estimated vs SQLite engine agreement" in first
        assert "1 computed" in first
        assert grid_main(argv) == 0
        second = capsys.readouterr().out
        assert "1 cached" in second and "0 computed" in second


class TestValidateCostsSqlite:
    def test_advisor_validates_on_the_engine(self, tmp_path):
        workload = _engine_workload("validate_engine")
        advisor = LayoutAdvisor(algorithms=("hillclimb", "navathe"))
        report = advisor.validate_costs(
            workload, rows=2_000, backend="sqlite", page_size=8192
        )
        assert isinstance(report, EngineValidationReport)
        labels = {validation.label for validation in report.validations}
        assert {"hillclimb", "navathe", "row", "column"} <= labels
        assert report.page_size == 8192
        assert all(v.engine_seconds > 0 for v in report.validations)
        assert -1.0 <= report.rank_correlation <= 1.0
        assert "rank correlation" in report.describe()

    def test_page_size_is_sqlite_only(self):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        with pytest.raises(ValueError, match="sqlite"):
            advisor.validate_costs(
                _engine_workload("pz"), rows=1_000, page_size=8192
            )

    def test_unknown_backend_is_rejected(self):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        with pytest.raises(ValueError, match="backend"):
            advisor.validate_costs(
                _engine_workload("ub"), rows=1_000, backend="postgres"
            )
