"""Integration tests asserting the paper's four key lessons (Section 7).

These run the real TPC-H workloads (at a reduced scale factor to stay fast —
the cost *ratios* the lessons are about are scale-invariant to first order)
and check the qualitative findings:

1. We don't really need brute force — the heuristics (HillClimb, AutoPart)
   find layouts with the same cost as exhaustive enumeration.
2. Watch out for the buffer size — shrinking the buffer inflates workload
   runtimes by an order of magnitude or more.
3. HillClimb is the best algorithm — best cost at modest optimisation time.
4. Column layouts are often good enough — vertical partitioning improves over
   the column layout by only a few percent on TPC-H, and Navathe/O2P are
   actually worse than Column.
"""

import pytest

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import column_partitioning, row_partitioning
from repro.cost.disk import DEFAULT_DISK, MB
from repro.cost.hdd import HDDCostModel
from repro.experiments.runner import run_suite
from repro.metrics.fragility import fragility
from repro.workload import tpch

SCALE_FACTOR = 1.0


@pytest.fixture(scope="module")
def suite():
    workloads = tpch.tpch_workloads(scale_factor=SCALE_FACTOR)
    return run_suite(workloads)


class TestLesson1_NoBruteForceNeeded:
    def test_hillclimb_matches_brute_force_cost(self, suite):
        """On every table where brute force is exact, HillClimb matches it."""
        for table in suite.tables:
            brute = suite.run("brute-force", table)
            if brute.approximate:
                continue
            hillclimb = suite.run("hillclimb", table)
            assert hillclimb.estimated_cost == pytest.approx(
                brute.estimated_cost, rel=1e-6
            )

    def test_autopart_matches_brute_force_cost(self, suite):
        for table in suite.tables:
            brute = suite.run("brute-force", table)
            if brute.approximate:
                continue
            autopart = suite.run("autopart", table)
            assert autopart.estimated_cost == pytest.approx(
                brute.estimated_cost, rel=1e-6
            )

    def test_heuristics_are_orders_of_magnitude_faster_than_brute_force(self, suite):
        """Where exact brute force ran, it is at least 10x slower than HillClimb
        in total (the paper reports 4-5 orders of magnitude on the full scale)."""
        exact_tables = [
            table for table in suite.tables if not suite.run("brute-force", table).approximate
        ]
        brute_time = sum(
            suite.run("brute-force", table).optimization_time for table in exact_tables
        )
        hillclimb_time = sum(
            suite.run("hillclimb", table).optimization_time for table in exact_tables
        )
        assert brute_time > 10 * hillclimb_time


class TestLesson2_BufferSizeMatters:
    def test_shrinking_the_buffer_inflates_runtimes(self):
        workload = tpch.tpch_workload("lineitem", scale_factor=SCALE_FACTOR)
        model = HDDCostModel(DEFAULT_DISK)
        layout = get_algorithm("hillclimb").run(workload, model).partitioning
        tiny_buffer = HDDCostModel(DEFAULT_DISK.with_buffer_size(int(0.08 * MB)))
        change = fragility(workload, layout, model, tiny_buffer)
        assert change > 1.0  # at least a 2x inflation; the paper sees up to 24x

    def test_growing_the_buffer_never_hurts(self):
        workload = tpch.tpch_workload("lineitem", scale_factor=SCALE_FACTOR)
        model = HDDCostModel(DEFAULT_DISK)
        layout = get_algorithm("hillclimb").run(workload, model).partitioning
        big_buffer = HDDCostModel(DEFAULT_DISK.with_buffer_size(800 * MB))
        assert fragility(workload, layout, model, big_buffer) <= 0.0

    def test_vertical_partitioning_stops_paying_off_for_huge_buffers(self):
        """Figure 9's sweet spot: with a very large buffer the column layout is
        at least as good as the HillClimb layout."""
        workload = tpch.tpch_workload("lineitem", scale_factor=SCALE_FACTOR)
        huge = HDDCostModel(DEFAULT_DISK.with_buffer_size(8_000 * MB))
        hillclimb_cost = get_algorithm("hillclimb").run(workload, huge).estimated_cost
        column_cost = huge.workload_cost(workload, column_partitioning(workload.schema))
        assert hillclimb_cost >= column_cost * 0.999


class TestLesson3_HillClimbIsBest:
    def test_hillclimb_has_the_lowest_total_cost(self, suite):
        hillclimb_cost = suite.total_cost("hillclimb")
        for name in ("navathe", "o2p", "trojan", "hyrise", "autopart"):
            assert hillclimb_cost <= suite.total_cost(name) * 1.0001

    def test_hillclimb_beats_row_layout_massively(self, suite):
        assert suite.total_cost("row") > 3 * suite.total_cost("hillclimb")

    def test_hillclimb_optimization_time_is_modest(self, suite):
        """HillClimb terminates quickly (well under a minute even in Python)."""
        assert suite.total_optimization_time("hillclimb") < 30.0


class TestLesson4_ColumnLayoutsAreOftenGoodEnough:
    def test_improvement_over_column_is_small(self, suite):
        column_cost = suite.total_cost("column")
        best_cost = suite.total_cost("hillclimb")
        improvement = (column_cost - best_cost) / column_cost
        assert 0.0 <= improvement < 0.15

    def test_navathe_and_o2p_are_worse_than_column(self, suite):
        column_cost = suite.total_cost("column")
        assert suite.total_cost("navathe") > column_cost
        assert suite.total_cost("o2p") > column_cost

    def test_row_layout_reads_mostly_unnecessary_data(self):
        from repro.metrics.quality import unnecessary_data_fraction

        workload = tpch.tpch_workload("lineitem", scale_factor=SCALE_FACTOR)
        fraction = unnecessary_data_fraction(workload, row_partitioning(workload.schema))
        assert fraction > 0.5  # the paper reports 84% across the benchmark
