"""Property-based tests for the engine backend's SQL compiler.

Three invariants over random schemas, layouts and queries, each checked
against a real ``:memory:`` SQLite database rather than by string inspection
where the catalog can answer:

* the DDL of a layout covers every attribute of the schema exactly once
  (completeness + disjointness survive compilation);
* a compiled query references exactly the group tables its attribute
  footprint needs — no more, no fewer;
* materialise-then-read-back is the identity:
  ``layout_from_connection`` after executing ``create_layout_sql`` rebuilds
  the input ``Partitioning``.
"""

import re
import sqlite3

from hypothesis import given, settings, strategies as st

from repro.core.partitioning import Partitioning
from repro.engine_x.sql import (
    RID_COLUMN,
    compile_query,
    create_layout_sql,
    group_table_name,
    layout_from_connection,
    quote_identifier,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@st.composite
def schema_and_partitioning(draw, max_attributes=10):
    n = draw(st.integers(min_value=1, max_value=max_attributes))
    columns = []
    for i in range(n):
        width = draw(st.integers(min_value=1, max_value=64))
        sql_type = draw(st.sampled_from(["integer", "bigint", "double", "char"]))
        columns.append(Column(f"a{i}", width, sql_type))
    schema = TableSchema(
        draw(st.sampled_from(["t", "part supp", 'wei"rd'])), columns, 1_000
    )
    labels = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
    )
    groups = {}
    for attribute, label in enumerate(labels):
        groups.setdefault(label, []).append(attribute)
    return schema, Partitioning(schema, list(groups.values()))


@st.composite
def case(draw):
    schema, partitioning = draw(schema_and_partitioning())
    n = schema.attribute_count
    footprint = draw(
        st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
    )
    query = Query(
        "Q1", [schema.attribute_names[i] for i in sorted(footprint)]
    ).resolve(schema)
    return schema, partitioning, query


def _materialize(connection, partitioning):
    for statement in create_layout_sql(partitioning):
        connection.execute(statement)


@given(schema_and_partitioning())
@settings(max_examples=60, deadline=None)
def test_ddl_covers_every_attribute_exactly_once(case_):
    schema, partitioning = case_
    with sqlite3.connect(":memory:") as connection:
        _materialize(connection, partitioning)
        seen = []
        for index in range(partitioning.partition_count):
            table = group_table_name(schema, index)
            info = connection.execute(
                f"PRAGMA table_info({quote_identifier(table)})"
            ).fetchall()
            names = [row[1] for row in info]
            assert names[0] == RID_COLUMN
            seen.extend(names[1:])
        assert sorted(seen) == sorted(schema.attribute_names)
        assert len(seen) == len(set(seen))


@given(case())
@settings(max_examples=60, deadline=None)
def test_query_sql_references_exactly_its_groups(case_):
    schema, partitioning, query = case_
    compiled = compile_query(partitioning, query)
    expected = tuple(
        index
        for index, partition in enumerate(partitioning.partitions)
        if partition.attributes & set(query.attribute_indices)
    )
    assert compiled.group_indices == expected
    assert compiled.tables == tuple(
        group_table_name(schema, index) for index in expected
    )
    # The SQL names exactly the referenced group tables (quoted), and no
    # unreferenced group's table sneaks into the FROM clause.
    for index in range(partitioning.partition_count):
        quoted = quote_identifier(group_table_name(schema, index))
        if index in expected:
            assert quoted in compiled.sql
        else:
            assert quoted not in compiled.sql
    # One aggregate per referenced attribute plus count(*).
    assert compiled.sql.count("sum(") == len(query.attribute_indices)
    assert "count(*)" in compiled.sql
    # Joins appear iff the footprint spans several groups.
    assert (" JOIN " in compiled.sql) == (len(expected) > 1)


@given(schema_and_partitioning())
@settings(max_examples=60, deadline=None)
def test_layout_round_trips_through_the_catalog(case_):
    schema, partitioning = case_
    with sqlite3.connect(":memory:") as connection:
        _materialize(connection, partitioning)
        rebuilt = layout_from_connection(connection, schema)
    assert rebuilt.partitions == partitioning.partitions
    assert rebuilt.schema == schema


@given(case())
@settings(max_examples=30, deadline=None)
def test_compiled_sql_executes_on_an_empty_layout(case_):
    schema, partitioning, query = case_
    compiled = compile_query(partitioning, query)
    with sqlite3.connect(":memory:") as connection:
        _materialize(connection, partitioning)
        row = connection.execute(compiled.sql).fetchone()
    assert row[0] == 0  # count(*) over empty tables
    assert len(row) == 1 + len(query.attribute_indices)
