"""Property-based tests for the partitioning model."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.partitioning import (
    Partition,
    Partitioning,
    PartitioningError,
    column_partitioning,
    row_partitioning,
)
from repro.workload.schema import Column, TableSchema


@st.composite
def schemas(draw, max_attributes=10):
    n = draw(st.integers(min_value=1, max_value=max_attributes))
    widths = draw(
        st.lists(st.integers(min_value=1, max_value=256), min_size=n, max_size=n)
    )
    rows = draw(st.integers(min_value=1, max_value=1_000_000))
    return TableSchema(
        "t", [Column(f"a{i}", width) for i, width in enumerate(widths)], rows
    )


@st.composite
def schema_and_partitioning(draw):
    schema = draw(schemas())
    n = schema.attribute_count
    labels = draw(st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n))
    groups = {}
    for attribute, label in enumerate(labels):
        groups.setdefault(label, []).append(attribute)
    return schema, Partitioning(schema, list(groups.values()))


class TestPartitioningProperties:
    @given(schema_and_partitioning())
    @settings(max_examples=100, deadline=None)
    def test_partitions_cover_each_attribute_exactly_once(self, pair):
        schema, layout = pair
        counts = [0] * schema.attribute_count
        for partition in layout:
            for attribute in partition:
                counts[attribute] += 1
        assert all(count == 1 for count in counts)

    @given(schema_and_partitioning())
    @settings(max_examples=100, deadline=None)
    def test_row_sizes_sum_to_table_row_size(self, pair):
        schema, layout = pair
        assert sum(p.row_size(schema) for p in layout) == schema.row_size

    @given(schema_and_partitioning())
    @settings(max_examples=100, deadline=None)
    def test_signature_is_order_invariant(self, pair):
        schema, layout = pair
        reshuffled = Partitioning(schema, list(reversed(list(layout.partitions))))
        assert layout == reshuffled
        assert hash(layout) == hash(reshuffled)

    @given(schemas())
    @settings(max_examples=50, deadline=None)
    def test_row_and_column_factories_are_extremes(self, schema):
        row = row_partitioning(schema)
        column = column_partitioning(schema)
        assert row.partition_count == 1
        assert column.partition_count == schema.attribute_count
        assert row.is_row_layout()
        assert column.is_column_layout()

    @given(schemas(), st.data())
    @settings(max_examples=50, deadline=None)
    def test_dropping_an_attribute_is_rejected(self, schema, data):
        if schema.attribute_count < 2:
            return
        drop = data.draw(
            st.integers(min_value=0, max_value=schema.attribute_count - 1)
        )
        kept = [i for i in range(schema.attribute_count) if i != drop]
        with pytest.raises(PartitioningError):
            Partitioning(schema, [kept])

    @given(schemas())
    @settings(max_examples=50, deadline=None)
    def test_duplicated_attribute_is_rejected(self, schema):
        groups = [[i] for i in range(schema.attribute_count)]
        groups.append([0])
        with pytest.raises(PartitioningError):
            Partitioning(schema, groups)
