"""Property-based tests for the online subsystem's incremental invariants.

Two families of invariants keep the streaming path honest:

* O2P's incrementally maintained affinity matrix must equal the
  from-scratch :meth:`~repro.workload.workload.Workload.affinity_matrix`
  after any replay, and the stepper must commit exactly the splits the
  offline replay (``O2PAlgorithm.compute``) commits.
* The sliding-window statistics must equal batch statistics computed on the
  same window, and their aggregated-by-footprint workload must cost exactly
  like the raw window under the cost kernel (weight-linearity of the cost).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.algorithms.o2p import O2PAlgorithm, O2PStepper
from repro.cost.evaluator import CostEvaluator
from repro.cost.hdd import HDDCostModel
from repro.online.stats import SlidingWindowStats
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@st.composite
def workloads(draw, max_attributes=8, max_queries=10):
    n = draw(st.integers(min_value=2, max_value=max_attributes))
    widths = draw(
        st.lists(st.integers(min_value=1, max_value=120), min_size=n, max_size=n)
    )
    rows = draw(st.integers(min_value=1_000, max_value=500_000))
    schema = TableSchema(
        "t", [Column(f"a{i}", w) for i, w in enumerate(widths)], rows
    )
    query_count = draw(st.integers(min_value=1, max_value=max_queries))
    queries = []
    for q in range(query_count):
        footprint = draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
        )
        weight = draw(st.floats(min_value=0.25, max_value=4.0))
        queries.append(
            Query(
                f"Q{q}",
                [schema.attribute_names[i] for i in footprint],
                weight=weight,
            )
        )
    return Workload(schema, queries)


class TestO2PIncrementalInvariants:
    @given(workloads())
    @settings(max_examples=50, deadline=None)
    def test_incremental_affinity_matches_batch_matrix(self, workload):
        stepper = O2PStepper(workload.schema)
        for query in workload:
            stepper.step(query)
        assert np.allclose(stepper.affinity, workload.affinity_matrix())

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_stepper_replay_equals_offline_compute(self, workload):
        model = HDDCostModel()
        algorithm = O2PAlgorithm()
        offline_layout = algorithm.compute(workload, model)
        stepper = O2PStepper(workload.schema)
        for query in workload:
            stepper.step(query)
        assert stepper.layout() == offline_layout
        assert stepper.metadata() == algorithm.last_run_metadata()

    @given(workloads())
    @settings(max_examples=30, deadline=None)
    def test_layout_masks_match_layout(self, workload):
        stepper = O2PStepper(workload.schema)
        for query in workload:
            stepper.step(query)
        assert sorted(stepper.layout_masks()) == sorted(stepper.layout().as_masks())


class TestWindowedStatsInvariants:
    @given(workloads(max_queries=12), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_sliding_window_equals_batch_window(self, workload, window):
        stats = SlidingWindowStats(workload.schema, window)
        for query in workload:
            stats.observe(query)
        tail = list(workload.queries)[-window:]
        batch = Workload(workload.schema, tail, name="tail")
        assert np.allclose(stats.affinity(), batch.affinity_matrix())
        assert np.isclose(stats.total_weight(), batch.total_weight)
        assert stats.size == len(tail)

    @given(workloads(max_queries=12), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_aggregated_window_costs_like_raw_window(self, workload, window):
        """The footprint-aggregated window workload must cost exactly like
        the raw window: per-query cost depends only on the footprint, and
        the workload cost is weight-linear."""
        model = HDDCostModel()
        stats = SlidingWindowStats(workload.schema, window)
        for query in workload:
            stats.observe(query)
        tail = list(workload.queries)[-window:]
        raw = Workload(workload.schema, tail, name="tail")
        aggregated = stats.as_workload()
        evaluator = CostEvaluator(aggregated, model)
        layout = [frozenset({i}) for i in range(workload.attribute_count)]
        raw_cost = sum(
            q.weight * evaluator.query_cost(q.index_mask, layout) for q in raw
        )
        assert np.isclose(evaluator.evaluate(layout), raw_cost)
