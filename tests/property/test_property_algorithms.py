"""Property-based tests over the partitioning algorithms."""

from hypothesis import given, settings, strategies as st

from repro.core.algorithm import get_algorithm
from repro.core.partitioning import Partitioning, column_partitioning, row_partitioning
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.cost.hdd import HDDCostModel
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload

HEURISTICS = ("autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan")


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    widths = draw(
        st.lists(st.integers(min_value=1, max_value=120), min_size=n, max_size=n)
    )
    rows = draw(st.integers(min_value=1_000, max_value=500_000))
    schema = TableSchema(
        "t", [Column(f"a{i}", w) for i, w in enumerate(widths)], rows
    )
    query_count = draw(st.integers(min_value=1, max_value=5))
    queries = []
    for q in range(query_count):
        footprint = draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
        )
        queries.append(Query(f"Q{q}", [schema.attribute_names[i] for i in footprint]))
    return Workload(schema, queries)


class TestAlgorithmProperties:
    @given(workloads(), st.sampled_from(HEURISTICS))
    @settings(max_examples=40, deadline=None)
    def test_heuristics_always_return_valid_partitionings(self, workload, name):
        model = HDDCostModel()
        layout = get_algorithm(name).compute(workload, model)
        # Re-validate: complete and disjoint.
        Partitioning(layout.schema, layout.partitions)

    @given(workloads(), st.sampled_from(("hillclimb", "autopart", "hyrise")))
    @settings(max_examples=30, deadline=None)
    def test_cost_driven_bottom_up_algorithms_never_worse_than_column(
        self, workload, name
    ):
        """Merge-based, cost-driven algorithms start at (or dominate) the
        column layout and only accept cost improvements.  Navathe/O2P (affinity
        objective) and Trojan (interestingness objective) are excluded: their
        split/grouping decisions do not consult the cost model, so no such
        guarantee exists — which is exactly why the paper finds them worse
        than Column on TPC-H."""
        model = HDDCostModel()
        result = get_algorithm(name).run(workload, model)
        column_cost = model.workload_cost(workload, column_partitioning(workload.schema))
        assert result.estimated_cost <= column_cost * 1.001

    @given(workloads(), st.sampled_from(("navathe", "o2p")))
    @settings(max_examples=25, deadline=None)
    def test_top_down_algorithms_never_split_without_positive_gain(
        self, workload, name
    ):
        """Navathe/O2P only split where the affinity gain is positive, so with a
        single query (every attribute pair either co-accessed or untouched)
        they must keep the referenced attributes of that query together."""
        single = Workload(workload.schema, [list(workload)[0]])
        model = HDDCostModel()
        layout = get_algorithm(name).compute(single, model)
        query = list(single)[0]
        referenced = layout.referenced_partitions(query)
        covering = [p for p in referenced if query.index_set <= p.attributes]
        assert len(covering) == 1

    @given(workloads())
    @settings(max_examples=20, deadline=None)
    def test_brute_force_is_a_lower_bound_for_every_heuristic(self, workload):
        """Raw (non-collapsed) enumeration is exhaustive, hence a true lower
        bound.  The primary-partition-collapsed variant is only optimal up to
        block-rounding effects, so it is not used here."""
        model = HDDCostModel()
        brute = get_algorithm(
            "brute-force", max_attributes=12, collapse_primary_partitions=False
        ).run(workload, model)
        for name in HEURISTICS:
            heuristic = get_algorithm(name).run(workload, model)
            assert brute.estimated_cost <= heuristic.estimated_cost * 1.0001

    @given(workloads(), st.sampled_from(HEURISTICS))
    @settings(max_examples=20, deadline=None)
    def test_deterministic_across_runs(self, workload, name):
        model = HDDCostModel()
        first = get_algorithm(name).compute(workload, model)
        second = get_algorithm(name).compute(workload, model)
        assert first == second

    @given(workloads(), st.sampled_from(HEURISTICS))
    @settings(max_examples=20, deadline=None)
    def test_scaling_the_table_does_not_change_the_layout_structure(
        self, workload, name
    ):
        """Layouts depend on access patterns and relative widths, so scaling
        the row count by a constant factor must still give a valid layout of
        the same schema (costs scale, structure stays legal)."""
        model = HDDCostModel()
        scaled = workload.scaled(3.0)
        layout = get_algorithm(name).compute(scaled, model)
        assert layout.schema.row_count == scaled.schema.row_count
        Partitioning(layout.schema, layout.partitions)
