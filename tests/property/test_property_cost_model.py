"""Property-based tests for the cost models."""

from hypothesis import given, settings, strategies as st

from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@st.composite
def workloads(draw, max_attributes=8, max_queries=6):
    n = draw(st.integers(min_value=1, max_value=max_attributes))
    widths = draw(
        st.lists(st.integers(min_value=1, max_value=200), min_size=n, max_size=n)
    )
    rows = draw(st.integers(min_value=100, max_value=2_000_000))
    schema = TableSchema(
        "t", [Column(f"a{i}", width) for i, width in enumerate(widths)], rows
    )
    query_count = draw(st.integers(min_value=1, max_value=max_queries))
    queries = []
    for q in range(query_count):
        footprint = draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
        )
        weight = draw(st.floats(min_value=0.1, max_value=10.0))
        queries.append(
            Query(f"Q{q}", [schema.attribute_names[i] for i in footprint], weight=weight)
        )
    return Workload(schema, queries)


@st.composite
def workload_and_partitioning(draw):
    workload = draw(workloads())
    n = workload.attribute_count
    labels = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
    )
    groups = {}
    for attribute, label in enumerate(labels):
        groups.setdefault(label, []).append(attribute)
    return workload, Partitioning(workload.schema, list(groups.values()))


@st.composite
def disks(draw):
    return DiskCharacteristics(
        block_size=draw(st.sampled_from([1 * KB, 4 * KB, 8 * KB, 64 * KB])),
        buffer_size=draw(st.sampled_from([256 * KB, 1 * MB, 8 * MB, 128 * MB])),
        read_bandwidth=draw(st.floats(min_value=10 * MB, max_value=500 * MB)),
        seek_time=draw(st.floats(min_value=1e-4, max_value=2e-2)),
    )


class TestHDDCostModelProperties:
    @given(workload_and_partitioning(), disks())
    @settings(max_examples=60, deadline=None)
    def test_costs_are_positive_and_finite(self, pair, disk):
        workload, layout = pair
        model = HDDCostModel(disk)
        cost = model.workload_cost(workload, layout)
        assert cost > 0
        assert cost < float("inf")

    @given(workload_and_partitioning(), disks())
    @settings(max_examples=60, deadline=None)
    def test_workload_cost_is_weighted_sum_of_query_costs(self, pair, disk):
        workload, layout = pair
        model = HDDCostModel(disk)
        expected = sum(
            query.weight * model.query_cost(query, layout) for query in workload
        )
        assert abs(model.workload_cost(workload, layout) - expected) < 1e-9 * max(
            1.0, expected
        )

    @given(workloads(), disks())
    @settings(max_examples=60, deadline=None)
    def test_pmv_lower_bounds_the_row_layout(self, workload, disk):
        """Each PMV projection is at most as wide as the full row, so it never
        needs more blocks or more seeks.  (The column layout is *not* a valid
        upper bound: block-internal fragmentation can make a narrow projection
        occupy more blocks than the per-attribute files.)"""
        from repro.algorithms.baselines import PerfectMaterializedViews

        model = HDDCostModel(disk)
        pmv = PerfectMaterializedViews().workload_cost(workload, model)
        row_cost = model.workload_cost(workload, row_partitioning(workload.schema))
        assert pmv <= row_cost + 1e-9

    @given(workload_and_partitioning())
    @settings(max_examples=60, deadline=None)
    def test_larger_buffer_never_increases_cost(self, pair):
        workload, layout = pair
        small = HDDCostModel(DiskCharacteristics(buffer_size=256 * KB))
        large = HDDCostModel(DiskCharacteristics(buffer_size=256 * MB))
        assert large.workload_cost(workload, layout) <= small.workload_cost(
            workload, layout
        ) + 1e-9

    @given(workload_and_partitioning())
    @settings(max_examples=60, deadline=None)
    def test_faster_disk_never_increases_cost(self, pair):
        workload, layout = pair
        slow = HDDCostModel(DiskCharacteristics(read_bandwidth=30 * MB, seek_time=1e-2))
        fast = HDDCostModel(DiskCharacteristics(read_bandwidth=300 * MB, seek_time=1e-3))
        assert fast.workload_cost(workload, layout) <= slow.workload_cost(
            workload, layout
        ) + 1e-9

    @given(workloads())
    @settings(max_examples=40, deadline=None)
    def test_column_layout_never_reads_more_logical_bytes_than_row(self, workload):
        """In logical bytes (ignoring block rounding) the column layout reads at
        most what the row layout reads, for every query."""
        from repro.metrics.quality import bytes_read

        row_bytes = bytes_read(workload, row_partitioning(workload.schema))
        column_bytes = bytes_read(workload, column_partitioning(workload.schema))
        assert column_bytes <= row_bytes + 1e-6


class TestMainMemoryCostModelProperties:
    @given(workload_and_partitioning())
    @settings(max_examples=60, deadline=None)
    def test_costs_positive(self, pair):
        workload, layout = pair
        model = MainMemoryCostModel()
        assert model.workload_cost(workload, layout) > 0

    @given(workloads(max_attributes=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_column_layout_minimises_data_access(self, workload, data):
        """Table 6's root cause as a property: for attributes no wider than a
        cache line, the column layout never streams more lines than the row
        layout, up to one line of rounding plus one access penalty per
        attribute."""
        model = MainMemoryCostModel()
        line = model.memory.cache_line_size
        if any(column.width > line for column in workload.schema.columns):
            # Rebuild the schema with widths clamped to one cache line; wider
            # attributes hit per-row alignment effects that void the property.
            from repro.workload.schema import Column, TableSchema
            from repro.workload.workload import Workload as WorkloadType

            clamped = TableSchema(
                workload.schema.name,
                [
                    Column(column.name, min(column.width, line), column.sql_type)
                    for column in workload.schema.columns
                ],
                workload.schema.row_count,
            )
            workload = WorkloadType(clamped, list(workload.queries), name=workload.name)
        column_cost = model.workload_cost(workload, column_partitioning(workload.schema))
        row_cost = model.workload_cost(workload, row_partitioning(workload.schema))
        slack = workload.total_weight * workload.attribute_count * (
            model.memory.partition_access_penalty + model.memory.cache_miss_latency
        )
        assert column_cost <= row_cost + slack
