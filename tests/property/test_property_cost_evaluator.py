"""Property-based tests for the bitmask cost-evaluation kernel.

The :class:`~repro.cost.evaluator.CostEvaluator` claims to be *exact*: its
memoized bitmask costing must agree with the naive
``CostModel.workload_cost`` path on every layout, for both cost models, and
the delta path (:meth:`evaluate_merge`) must agree with evaluating the merged
layout from scratch.  These tests drive randomized schemas, workloads and
layouts through both paths.
"""

from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro.core.partitioning import Partitioning
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.cost.evaluator import CostEvaluator
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@st.composite
def workload_layout_and_model(draw, max_attributes=8, max_queries=6):
    n = draw(st.integers(min_value=2, max_value=max_attributes))
    widths = draw(
        st.lists(st.integers(min_value=1, max_value=200), min_size=n, max_size=n)
    )
    rows = draw(st.integers(min_value=100, max_value=2_000_000))
    schema = TableSchema(
        "t", [Column(f"a{i}", width) for i, width in enumerate(widths)], rows
    )
    query_count = draw(st.integers(min_value=1, max_value=max_queries))
    queries = []
    for q in range(query_count):
        footprint = draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=n)
        )
        weight = draw(st.floats(min_value=0.1, max_value=10.0))
        queries.append(
            Query(f"Q{q}", [schema.attribute_names[i] for i in footprint], weight=weight)
        )
    workload = Workload(schema, queries)

    labels = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=n, max_size=n)
    )
    groups_by_label = {}
    for attribute, label in enumerate(labels):
        groups_by_label.setdefault(label, set()).add(attribute)
    groups = [frozenset(group) for group in groups_by_label.values()]

    if draw(st.booleans()):
        model = HDDCostModel(
            DiskCharacteristics(
                block_size=draw(st.sampled_from([1 * KB, 4 * KB, 8 * KB, 64 * KB])),
                buffer_size=draw(st.sampled_from([256 * KB, 1 * MB, 8 * MB])),
                read_bandwidth=draw(st.floats(min_value=10 * MB, max_value=500 * MB)),
                seek_time=draw(st.floats(min_value=1e-4, max_value=2e-2)),
            ),
            buffer_sharing=draw(st.sampled_from(["proportional", "equal"])),
        )
    else:
        model = MainMemoryCostModel()
    return workload, groups, model


class TestCostEvaluatorExactness:
    @given(workload_layout_and_model())
    @settings(max_examples=120, deadline=None)
    def test_evaluate_agrees_with_naive_workload_cost(self, case):
        workload, groups, model = case
        evaluator = CostEvaluator(workload, model)
        naive = model.workload_cost(
            workload, Partitioning(workload.schema, list(groups))
        )
        fast = evaluator.evaluate(groups)
        # The kernel's invariant is bit-identity, well inside the 1e-9 budget.
        assert fast == naive
        assert abs(fast - naive) <= 1e-9 * max(1.0, abs(naive))

    @given(workload_layout_and_model())
    @settings(max_examples=120, deadline=None)
    def test_evaluate_merge_agrees_with_from_scratch_evaluation(self, case):
        workload, groups, model = case
        evaluator = CostEvaluator(workload, model)
        naive_evaluator = CostEvaluator(workload, model, naive=True)
        for a, b in combinations(range(len(groups)), 2):
            merged = [g for i, g in enumerate(groups) if i not in (a, b)]
            merged.append(groups[a] | groups[b])
            delta = evaluator.evaluate_merge(groups, a, b)
            assert delta == evaluator.evaluate(merged)
            assert delta == naive_evaluator.evaluate(merged)

    @given(workload_layout_and_model())
    @settings(max_examples=60, deadline=None)
    def test_naive_flag_matches_fast_path(self, case):
        """The benchmark's comparison flag really computes the same numbers."""
        workload, groups, model = case
        fast = CostEvaluator(workload, model).evaluate(groups)
        naive = CostEvaluator(workload, model, naive=True).evaluate(groups)
        assert fast == naive

    @given(workload_layout_and_model())
    @settings(max_examples=60, deadline=None)
    def test_caches_are_layout_independent(self, case):
        """Re-evaluating after other layouts were costed must not drift."""
        workload, groups, model = case
        evaluator = CostEvaluator(workload, model)
        first = evaluator.evaluate(groups)
        # Pollute the caches with different layouts: column + row.
        n = workload.attribute_count
        evaluator.evaluate([frozenset([i]) for i in range(n)])
        evaluator.evaluate([frozenset(range(n))])
        assert evaluator.evaluate(groups) == first
