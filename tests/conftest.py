"""Shared fixtures for the test suite.

Fixtures deliberately use small scale factors and narrow tables so the whole
suite stays fast; the full-scale reproduction numbers are produced by the
benchmark harnesses in ``benchmarks/`` instead.
"""

from __future__ import annotations

import pytest

from repro.cost.disk import DiskCharacteristics, MB
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.workload import tpch
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def small_schema() -> TableSchema:
    """A five-attribute table mirroring the paper's PartSupp example."""
    return TableSchema(
        name="partsupp_small",
        columns=[
            Column("partkey", 4, "int"),
            Column("suppkey", 4, "int"),
            Column("availqty", 4, "int"),
            Column("supplycost", 8, "decimal"),
            Column("comment", 199, "varchar(199)"),
        ],
        row_count=100_000,
    )


@pytest.fixture
def intro_workload(small_schema: TableSchema) -> Workload:
    """The two-query workload from the paper's introduction (Q1 and Q2)."""
    return Workload(
        schema=small_schema,
        queries=[
            Query("Q1", ["partkey", "suppkey", "availqty", "supplycost"]),
            Query("Q2", ["availqty", "supplycost", "comment"]),
        ],
        name="intro",
    )


@pytest.fixture
def tiny_disk() -> DiskCharacteristics:
    """Disk characteristics with a small buffer so seek effects are visible."""
    return DiskCharacteristics(buffer_size=1 * MB)


@pytest.fixture
def hdd_model() -> HDDCostModel:
    """The paper's default HDD cost model."""
    return HDDCostModel()


@pytest.fixture
def mm_model() -> MainMemoryCostModel:
    """The main-memory (cache miss) cost model."""
    return MainMemoryCostModel()


@pytest.fixture
def partsupp_workload() -> Workload:
    """The real TPC-H PartSupp workload at a small scale factor."""
    return tpch.tpch_workload("partsupp", scale_factor=0.1)


@pytest.fixture
def customer_workload() -> Workload:
    """The real TPC-H Customer workload at a small scale factor."""
    return tpch.tpch_workload("customer", scale_factor=0.1)


@pytest.fixture
def lineitem_workload() -> Workload:
    """The real TPC-H Lineitem workload at a small scale factor."""
    return tpch.tpch_workload("lineitem", scale_factor=0.1)
