"""Unit tests for the main-memory (cache miss) cost model."""

import pytest

from repro.core.partitioning import Partitioning, column_partitioning, row_partitioning
from repro.cost.mainmemory import (
    MainMemoryCharacteristics,
    MainMemoryCostModel,
    MemoryParameterError,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def schema():
    # Widths chosen so that the {a, c} group is exactly one 64-byte cache line
    # wide: grouping versus splitting then streams the same number of lines.
    return TableSchema(
        "t", [Column("a", 8), Column("b", 8), Column("c", 56)], row_count=10_000
    )


@pytest.fixture
def workload(schema):
    return Workload(schema, [Query("Q1", ["a"]), Query("Q2", ["a", "c"])])


class TestCharacteristics:
    def test_defaults_are_sane(self):
        memory = MainMemoryCharacteristics()
        assert memory.cache_line_size == 64
        assert memory.cache_miss_latency > 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(MemoryParameterError):
            MainMemoryCharacteristics(cache_line_size=0)
        with pytest.raises(MemoryParameterError):
            MainMemoryCharacteristics(cache_miss_latency=0)
        with pytest.raises(MemoryParameterError):
            MainMemoryCharacteristics(partition_access_penalty=-1)

    def test_with_cache_line_size(self):
        assert MainMemoryCharacteristics().with_cache_line_size(128).cache_line_size == 128


class TestCacheMisses:
    def test_narrow_partition_packs_cache_lines(self, schema):
        model = MainMemoryCostModel()
        column = column_partitioning(schema)
        narrow = column.partition_of(0)  # 8-byte rows, 8 per 64-byte line
        assert model.cache_misses(narrow, column) == schema.row_count // 8

    def test_wide_partition_costs_at_least_one_line_per_row(self, schema):
        model = MainMemoryCostModel()
        row = row_partitioning(schema)
        # Row width 72 bytes > 64-byte line -> 2 lines per row.
        assert model.cache_misses(row.partitions[0], row) == 2 * schema.row_count

    def test_query_cost_prefers_column_layout(self, schema, workload):
        """Reading unnecessary attributes always costs extra cache lines."""
        model = MainMemoryCostModel()
        grouped = Partitioning(schema, [[0, 2], [1]])
        column = column_partitioning(schema)
        q1 = workload.query("Q1")  # touches only "a"
        assert model.query_cost(q1, column) < model.query_cost(q1, grouped)

    def test_partition_switch_penalty_is_small(self, schema, workload):
        """Splitting co-accessed attributes costs only the tiny access penalty."""
        model = MainMemoryCostModel()
        q2 = workload.query("Q2")  # touches a and c
        together = Partitioning(schema, [[0, 2], [1]])
        apart = column_partitioning(schema)
        cost_together = model.query_cost(q2, together)
        cost_apart = model.query_cost(q2, apart)
        # Same bytes streamed either way; the difference is just one extra
        # partition-access penalty, orders of magnitude below the total.
        assert abs(cost_apart - cost_together) <= 2 * model.memory.partition_access_penalty

    def test_workload_cost_positive(self, schema, workload):
        model = MainMemoryCostModel()
        assert model.workload_cost(workload, column_partitioning(schema)) > 0

    def test_with_memory_and_describe(self):
        model = MainMemoryCostModel()
        other = model.with_memory(MainMemoryCharacteristics(cache_line_size=128))
        assert other.memory.cache_line_size == 128
        assert "line" in model.describe()


class TestTable6Behaviour:
    def test_column_layout_is_never_beaten_on_data_access(self, lineitem_workload):
        """The paper's Table 6: in main memory nothing beats the column layout."""
        model = MainMemoryCostModel()
        from repro.core.algorithm import get_algorithm

        column_cost = model.workload_cost(
            lineitem_workload, column_partitioning(lineitem_workload.schema)
        )
        result = get_algorithm("hillclimb").run(lineitem_workload, model)
        # HillClimb optimised for the MM model cannot do better than column by
        # more than the negligible partition-access penalties.
        assert result.estimated_cost >= column_cost * 0.999
