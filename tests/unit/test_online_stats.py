"""Unit tests for the windowed workload statistics (repro.online.stats)."""

import numpy as np
import pytest

from repro.online.stats import DecayedStats, SlidingWindowStats
from repro.online.stream import rotating_hot_set_stream
from repro.workload.query import Query
from repro.workload.synthetic import synthetic_table
from repro.workload.workload import Workload


@pytest.fixture
def schema():
    return synthetic_table(8, row_count=50_000, random_state=1)


@pytest.fixture
def stream(schema):
    return rotating_hot_set_stream(
        schema,
        num_phases=2,
        queries_per_phase=40,
        hot_size=4,
        min_attributes=1,
        max_attributes=4,
        random_state=1,
    )


class TestSlidingWindowStats:
    def test_windowed_stats_equal_batch_stats(self, schema, stream):
        """After any number of arrivals the incremental summary must equal
        the batch statistics of exactly the last ``window`` queries."""
        window = 16
        stats = SlidingWindowStats(schema, window)
        arrived = []
        for query in stream:
            stats.observe(query)
            arrived.append(query)
            batch = Workload(schema, arrived[-window:], name="batch")
            assert np.allclose(stats.affinity(), batch.affinity_matrix())
            assert stats.total_weight() == pytest.approx(batch.total_weight)
        assert stats.size == window
        assert stats.arrivals == len(stream)

    def test_footprints_aggregate_and_evict_cleanly(self, schema):
        names = schema.attribute_names
        stats = SlidingWindowStats(schema, 4)
        q_ab = Query("x", names[:2]).resolve(schema)
        q_c = Query("y", [names[2]]).resolve(schema)
        for _ in range(3):
            stats.observe(q_ab)
        stats.observe(q_c)
        assert stats.distinct_footprints == 2
        # Two more arrivals of q_c evict two q_ab occurrences.
        stats.observe(q_c)
        stats.observe(q_c)
        weights = stats.footprint_weights()
        assert weights[q_ab.index_mask] == pytest.approx(1.0)
        assert weights[q_c.index_mask] == pytest.approx(3.0)
        # Evicting the last q_ab drops the entry entirely (no float residue).
        stats.observe(q_c)
        assert q_ab.index_mask not in stats.footprint_weights()

    def test_as_workload_is_weight_equivalent(self, schema, stream):
        stats = SlidingWindowStats(schema, 24)
        for query in stream:
            stats.observe(query)
        aggregated = stats.as_workload()
        raw = Workload(schema, list(stream.queries[-24:]), name="raw")
        assert aggregated.total_weight == pytest.approx(raw.total_weight)
        assert np.allclose(aggregated.affinity_matrix(), raw.affinity_matrix())
        # Deterministic materialisation: same window -> identical workload.
        assert [q.name for q in stats.as_workload()] == [q.name for q in aggregated]

    def test_needed_bytes_tracks_window(self, schema):
        names = schema.attribute_names
        stats = SlidingWindowStats(schema, 2)
        wide = Query("w", names[:4]).resolve(schema)
        narrow = Query("n", [names[0]]).resolve(schema)
        stats.observe(wide)
        wide_bytes = stats.weighted_needed_bytes()
        stats.observe(narrow)
        stats.observe(narrow)  # evicts the wide query
        expected = 2 * schema.subset_row_size([0]) * schema.row_count
        assert stats.weighted_needed_bytes() == pytest.approx(expected)
        assert stats.weighted_needed_bytes() < wide_bytes

    def test_rejects_bad_window(self, schema):
        with pytest.raises(ValueError):
            SlidingWindowStats(schema, 0)

    def test_long_mixed_weight_stream_leaves_no_residue(self, schema):
        """Regression: partial eviction of a footprint with mixed weights
        left ±1e-16 float residue in the running sums — sometimes *negative*
        mass — that as_workload()/affinity() then reported.  After a long
        mixed-weight stream the incremental window must equal a batch
        recomputation to tight tolerance, with nothing negative anywhere."""
        names = schema.attribute_names
        window = 7
        stats = SlidingWindowStats(schema, window)
        # Awkward, cancellation-prone weights over a handful of recurring
        # footprints, long enough to evict each footprint hundreds of times.
        footprints = [names[:2], [names[2]], names[1:4], [names[0]], names[:4]]
        weights = [0.1, 0.3, 1e-9, 7.7, 0.2, 1 / 3, 1e3, 0.7]
        arrived = []
        for step in range(2000):
            query = Query(
                f"q{step}",
                footprints[step % len(footprints)],
                weight=weights[step % len(weights)],
            ).resolve(schema)
            stats.observe(query)
            arrived.append(query)
        batch = Workload(schema, arrived[-window:], name="batch")
        assert stats.total_weight() == pytest.approx(
            batch.total_weight, rel=1e-9
        )
        assert np.allclose(
            stats.affinity(), batch.affinity_matrix(), rtol=1e-9, atol=0.0
        )
        # No negative residue anywhere, however tiny.
        assert (stats.affinity() >= 0.0).all()
        assert stats.total_weight() >= 0.0
        assert stats.weighted_needed_bytes() >= 0.0
        for weight in stats.footprint_weights().values():
            assert weight >= 0.0
        # The materialised window only carries positive-weight footprints.
        for query in stats.as_workload():
            assert query.weight > 0.0

    def test_evicting_to_empty_window_zeroes_everything_exactly(self, schema):
        """Cancellation-prone weights must still leave a bit-exact zero
        summary once their footprints cycle fully out of the window."""
        names = schema.attribute_names
        stats = SlidingWindowStats(schema, 3)
        # This exact weight sequence used to leave -1.1e-16 *negative* mass
        # in affinity[0, 0] after the footprint cycled out of the window.
        for step, weight in enumerate([0.1, 0.2, 0.3, 0.7, 1 / 3, 1 / 7]):
            stats.observe(Query(f"q{step}", names[:3], weight=weight).resolve(schema))
        # Push three disjoint-footprint queries through: the earlier
        # footprint leaves the window completely.
        for step in range(3):
            stats.observe(Query(f"z{step}", [names[7]], weight=1.0).resolve(schema))
        affinity = stats.affinity()
        assert affinity[0, 0] == 0.0 and affinity[1, 2] == 0.0
        assert affinity[7, 7] == pytest.approx(3.0)
        assert stats.total_weight() == pytest.approx(3.0)


class TestDecayedStats:
    def test_decay_discounts_old_queries(self, schema):
        names = schema.attribute_names
        stats = DecayedStats(schema, decay=0.5)
        old = Query("old", [names[0]]).resolve(schema)
        new = Query("new", [names[1]]).resolve(schema)
        stats.observe(old)
        for _ in range(4):
            stats.observe(new)
        weights = stats.footprint_weights()
        # The old query decayed through four halvings (the newest arrival
        # contributes its full weight: decay**0).
        assert weights[old.index_mask] == pytest.approx(0.5**4)
        assert weights[new.index_mask] == pytest.approx(
            sum(0.5**k for k in range(4))
        )

    def test_matches_explicit_decay_sum(self, schema, stream):
        decay = 0.9
        stats = DecayedStats(schema, decay=decay)
        queries = list(stream)[:30]
        for query in queries:
            stats.observe(query)
        expected = np.zeros((schema.attribute_count, schema.attribute_count))
        for age, query in enumerate(reversed(queries)):
            for i in query.attribute_indices:
                for j in query.attribute_indices:
                    expected[i, j] += query.weight * decay**age
        assert np.allclose(stats.affinity(), expected)

    def test_renormalization_keeps_values(self, schema):
        names = schema.attribute_names
        # Aggressive decay forces the running scale through renormalisation.
        stats = DecayedStats(schema, decay=0.01)
        query = Query("q", names[:2]).resolve(schema)
        for _ in range(12):  # 0.01**12 is far below the renormalise threshold
            stats.observe(query)
        weights = stats.footprint_weights()
        expected = sum(0.01**k for k in range(12))
        assert weights[query.index_mask] == pytest.approx(expected)

    def test_rejects_bad_decay(self, schema):
        with pytest.raises(ValueError):
            DecayedStats(schema, decay=0.0)
        with pytest.raises(ValueError):
            DecayedStats(schema, decay=1.5)
