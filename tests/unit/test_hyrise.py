"""Unit tests for the HYRISE layout algorithm."""

import pytest

from repro.algorithms.hillclimb import HillClimbAlgorithm
from repro.algorithms.hyrise import HyriseAlgorithm
from repro.cost.mainmemory import MainMemoryCostModel


class TestHyrise:
    def test_rejects_bad_subgraph_size(self):
        with pytest.raises(ValueError):
            HyriseAlgorithm(max_primary_partitions_per_subgraph=0)

    def test_subgraphs_respect_size_limit(self, lineitem_workload, hdd_model):
        algorithm = HyriseAlgorithm(max_primary_partitions_per_subgraph=3)
        algorithm.run(lineitem_workload, hdd_model)
        metadata = algorithm.last_run_metadata()
        assert all(len(subgraph) <= 3 for subgraph in metadata["subgraphs"])
        # Subgraphs cover every primary partition exactly once.
        nodes = sorted(node for subgraph in metadata["subgraphs"] for node in subgraph)
        assert nodes == list(range(len(metadata["primary_partitions"])))

    def test_large_k_degenerates_to_autopart_quality(self, customer_workload, hdd_model):
        """With all primary partitions in one subgraph HYRISE equals the
        unrestricted bottom-up merge."""
        hyrise = HyriseAlgorithm(max_primary_partitions_per_subgraph=64).run(
            customer_workload, hdd_model
        )
        hillclimb = HillClimbAlgorithm().run(customer_workload, hdd_model)
        assert hyrise.estimated_cost == pytest.approx(hillclimb.estimated_cost, rel=1e-6)

    def test_close_to_hillclimb_on_lineitem(self, lineitem_workload, hdd_model):
        """The paper reports HYRISE within ~2% of the optimum on TPC-H."""
        hyrise = HyriseAlgorithm().run(lineitem_workload, hdd_model)
        hillclimb = HillClimbAlgorithm().run(lineitem_workload, hdd_model)
        assert hyrise.estimated_cost <= hillclimb.estimated_cost * 1.05

    def test_primary_partitions_never_split(self, lineitem_workload, hdd_model):
        layout = HyriseAlgorithm().compute(lineitem_workload, hdd_model)
        for fragment in lineitem_workload.primary_partitions():
            containing = [p for p in layout if fragment & p.attributes]
            assert len(containing) == 1

    def test_works_with_main_memory_cost_model(self, customer_workload):
        """HYRISE's native setting: optimise for cache misses."""
        model = MainMemoryCostModel()
        result = HyriseAlgorithm().run(customer_workload, model)
        assert result.estimated_cost > 0
