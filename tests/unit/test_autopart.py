"""Unit tests for the AutoPart algorithm."""

import pytest

from repro.algorithms.autopart import AutoPartAlgorithm
from repro.algorithms.brute_force import BruteForceAlgorithm
from repro.algorithms.hillclimb import HillClimbAlgorithm


class TestAutoPart:
    def test_starts_from_atomic_fragments(self, intro_workload, hdd_model):
        algorithm = AutoPartAlgorithm()
        algorithm.run(intro_workload, hdd_model)
        fragments = algorithm.last_run_metadata()["atomic_fragments"]
        # partkey+suppkey are always co-accessed, as are availqty+supplycost.
        assert [0, 1] in fragments
        assert [2, 3] in fragments

    def test_matches_brute_force_on_partsupp(self, partsupp_workload, hdd_model):
        """Paper Lesson 1: AutoPart finds the brute-force-optimal layouts."""
        autopart = AutoPartAlgorithm().run(partsupp_workload, hdd_model)
        brute = BruteForceAlgorithm().run(partsupp_workload, hdd_model)
        assert autopart.estimated_cost == pytest.approx(brute.estimated_cost, rel=1e-9)

    def test_same_cost_as_hillclimb_on_tpch_tables(
        self, customer_workload, lineitem_workload, hdd_model
    ):
        """AutoPart and HillClimb belong to the same quality class (Figure 14)."""
        for workload in (customer_workload, lineitem_workload):
            autopart = AutoPartAlgorithm().run(workload, hdd_model)
            hillclimb = HillClimbAlgorithm().run(workload, hdd_model)
            assert autopart.estimated_cost == pytest.approx(
                hillclimb.estimated_cost, rel=1e-6
            )

    def test_never_splits_atomic_fragments(self, lineitem_workload, hdd_model):
        """Attributes always accessed together stay together."""
        layout = AutoPartAlgorithm().compute(lineitem_workload, hdd_model)
        for fragment in lineitem_workload.primary_partitions():
            # The fragment must be contained in exactly one partition.
            containing = [
                partition
                for partition in layout
                if fragment & partition.attributes
            ]
            assert len(containing) == 1
            assert fragment <= containing[0].attributes

    def test_metadata_counts(self, partsupp_workload, hdd_model):
        algorithm = AutoPartAlgorithm()
        algorithm.run(partsupp_workload, hdd_model)
        metadata = algorithm.last_run_metadata()
        assert metadata["iterations"] >= 1
        assert metadata["final_cost"] > 0
