"""Unit tests for the mutual-information-based interestingness measure."""

import pytest

from repro.algorithms.support.interestingness import (
    column_group_interestingness,
    mutual_information,
    normalized_mutual_information,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def schema():
    return TableSchema(
        "t", [Column(name, 4) for name in ("a", "b", "c", "d")], row_count=100
    )


@pytest.fixture
def workload(schema):
    """a and b are always co-accessed; c is accessed independently; d never."""
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"]),
            Query("Q2", ["a", "b", "c"]),
            Query("Q3", ["c"]),
            Query("Q4", ["a", "b"]),
        ],
    )


class TestMutualInformation:
    def test_identical_access_patterns_have_max_nmi(self, workload, schema):
        a, b = schema.index_of("a"), schema.index_of("b")
        assert normalized_mutual_information(workload, a, b) == pytest.approx(1.0)

    def test_independent_attributes_have_low_nmi(self, workload, schema):
        a, c = schema.index_of("a"), schema.index_of("c")
        assert normalized_mutual_information(workload, a, c) < 0.5

    def test_mutual_information_non_negative(self, workload):
        for i in range(4):
            for j in range(4):
                assert mutual_information(workload, i, j) >= 0.0

    def test_mi_symmetry(self, workload):
        assert mutual_information(workload, 0, 2) == pytest.approx(
            mutual_information(workload, 2, 0)
        )

    def test_never_accessed_attribute(self, workload, schema):
        d = schema.index_of("d")
        a = schema.index_of("a")
        # d is never accessed: entropy 0, not identical to a -> NMI 0.
        assert normalized_mutual_information(workload, a, d) == 0.0


class TestGroupInterestingness:
    def test_singleton_group_is_maximally_interesting(self, workload):
        assert column_group_interestingness(workload, [0]) == 1.0

    def test_co_accessed_pair_more_interesting_than_unrelated_pair(
        self, workload, schema
    ):
        ab = column_group_interestingness(
            workload, [schema.index_of("a"), schema.index_of("b")]
        )
        ad = column_group_interestingness(
            workload, [schema.index_of("a"), schema.index_of("d")]
        )
        assert ab > ad

    def test_empty_group_rejected(self, workload):
        with pytest.raises(ValueError):
            column_group_interestingness(workload, [])

    def test_interestingness_bounded(self, workload):
        for group in ([0, 1], [0, 2], [0, 1, 2, 3]):
            value = column_group_interestingness(workload, group)
            assert 0.0 <= value <= 1.0
