"""Unit tests for the grid runner: cache resume, serial/parallel parity, CLI."""

import json
import threading

import pytest

from repro.core.advisor import LayoutAdvisor
from repro.cost.evaluator import CostEvaluator, cache_sharing_enabled, enable_cache_sharing
from repro.cost.hdd import HDDCostModel
from repro.grid.cache import canonical_json, deterministic_payload
from repro.grid.cli import main as grid_main
from repro.grid.runner import run_grid
from repro.grid.spec import (
    GridCancelled,
    GridError,
    GridSpec,
    builtin_grid,
    register_workload,
    resolve_cost_model,
    resolve_workload,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


def _tiny_workload(name: str, weight: float = 1.0) -> Workload:
    schema = TableSchema(
        f"{name}_table",
        [Column("a", 4), Column("b", 8), Column("c", 60), Column("d", 16)],
        200_000,
    )
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=weight),
            Query("Q2", ["c"]),
            Query("Q3", ["a", "c", "d"], weight=0.5),
        ],
        name=name,
    )


# Registered once per test session; factories are deterministic as the cache
# requires.
for _name in ("alpha", "beta"):
    try:
        register_workload(f"custom:{_name}", lambda _n=_name: _tiny_workload(_n))
    except GridError:
        pass

SPEC = GridSpec(
    name="unit",
    algorithms=("hillclimb", "navathe"),
    workloads=("custom:alpha", "custom:beta"),
    cost_models=("hdd", "mainmemory"),
)


class TestSpec:
    def test_cells_cover_cross_product_deterministically(self):
        cells = SPEC.cells()
        assert len(cells) == SPEC.cell_count == 8
        assert cells == SPEC.cells()
        assert len({cell.label for cell in cells}) == 8
        # Workload-major ordering keeps same-schema cells adjacent.
        assert [c.workload for c in cells[:4]] == ["custom:alpha"] * 4

    def test_algorithm_options_reach_cells(self):
        spec = GridSpec(
            name="opts",
            algorithms=("hillclimb",),
            workloads=("custom:alpha",),
            cost_models=("hdd",),
            algorithm_options={"hillclimb": {"naive_costing": True}},
        )
        assert spec.cells()[0].options() == {"naive_costing": True}

    def test_unknown_ids_raise(self):
        with pytest.raises(GridError):
            resolve_workload("nope:whatever")
        with pytest.raises(GridError):
            resolve_cost_model("nope")
        with pytest.raises(GridError):
            builtin_grid("nope")

    def test_builtin_workload_ids_resolve(self):
        for grid_name in ("tiny", "small"):
            spec = builtin_grid(grid_name)
            for workload_id in spec.workloads:
                assert resolve_workload(workload_id).query_count > 0
            for cost_model_id in spec.cost_models:
                resolve_cost_model(cost_model_id)


class TestRunGrid:
    def test_uncached_run_completes(self):
        report = run_grid(SPEC, cache_dir=None)
        assert len(report.results) == 8
        assert report.cache_hits == 0 and report.computed == 8
        cell = report.cell("hillclimb", "custom:alpha", "hdd")
        assert cell.estimated_cost > 0
        assert sorted(sum(map(list, cell.layout), [])) == ["a", "b", "c", "d"]

    def test_second_run_is_fully_cached_and_identical(self, tmp_path):
        first = run_grid(SPEC, cache_dir=str(tmp_path))
        second = run_grid(SPEC, cache_dir=str(tmp_path))
        assert first.computed == 8 and first.cache_hits == 0
        assert second.computed == 0 and second.cache_hits == 8
        assert second.hit_rate == 1.0
        for a, b in zip(first.results, second.results):
            assert a.cell == b.cell
            # Cached cells are byte-identical to the fresh computation,
            # including the wall-clock timing the cache preserved.
            assert canonical_json(a.payload).encode() == canonical_json(b.payload).encode()
        # Aggregate tables are reproduced exactly from the cache.
        from repro.grid.aggregate import headline_tables

        assert headline_tables(first.results) == headline_tables(second.results)

    def test_corrupted_entry_is_recomputed_and_repaired(self, tmp_path):
        first = run_grid(SPEC, cache_dir=str(tmp_path))
        victim = first.results[0]
        path = first.cache.path_for(victim.key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["payload"]["estimated_cost"] = -1.0
        path.write_text(json.dumps(entry), encoding="utf-8")

        second = run_grid(SPEC, cache_dir=str(tmp_path))
        assert second.computed == 1 and second.cache_hits == 7
        assert second.cache.corrupt == 1
        repaired = second.results[0]
        # The recomputation reproduces the deterministic result exactly (its
        # wall-clock timing section legitimately differs).
        assert deterministic_payload(repaired.payload) == deterministic_payload(
            victim.payload
        )
        # The entry on disk is valid again.
        third = run_grid(SPEC, cache_dir=str(tmp_path))
        assert third.cache_hits == 8

    def test_refresh_recomputes_despite_cache(self, tmp_path):
        run_grid(SPEC, cache_dir=str(tmp_path))
        refreshed = run_grid(SPEC, cache_dir=str(tmp_path), refresh=True)
        assert refreshed.computed == 8 and refreshed.cache_hits == 0

    def test_parallel_matches_serial_cell_for_cell(self, tmp_path):
        serial = run_grid(SPEC, cache_dir=None, workers=1)
        parallel = run_grid(SPEC, cache_dir=str(tmp_path / "par"), workers=3)
        assert parallel.computed == 8
        for s, p in zip(serial.results, parallel.results):
            assert s.cell == p.cell
            assert s.layout == p.layout
            assert s.estimated_cost == p.estimated_cost
            det_s = canonical_json(deterministic_payload(s.payload))
            det_p = canonical_json(deterministic_payload(p.payload))
            assert det_s.encode() == det_p.encode()

    def test_progress_callback_sees_every_cell(self, tmp_path):
        lines = []
        run_grid(SPEC, cache_dir=str(tmp_path), progress=lines.append)
        assert len(lines) == 8
        assert all(line.startswith("computed") for line in lines)
        lines.clear()
        run_grid(SPEC, cache_dir=str(tmp_path), progress=lines.append)
        assert all(line.startswith("cached") for line in lines)

    def test_serial_run_restores_cache_sharing_setting(self):
        assert not cache_sharing_enabled()
        run_grid(SPEC, cache_dir=None)
        assert not cache_sharing_enabled()

    def test_serial_run_restores_worker_memos(self):
        """Regression: the serial path primes the worker module's
        process-local workload/cost-model memos and used to leave its own
        entries behind, leaking one run's resolver results into the next."""
        from repro.grid import worker as grid_worker

        workloads_before = dict(grid_worker._workloads)
        cost_models_before = dict(grid_worker._cost_models)
        run_grid(SPEC, cache_dir=None)
        assert grid_worker._workloads == workloads_before
        assert grid_worker._cost_models == cost_models_before

    def test_cell_lookup_disambiguates_backends(self):
        """Regression: ``GridReport.cell()`` ignored the backend axis, so a
        mixed estimated+measured result list silently returned whichever
        backend sorted first."""
        from repro.grid.runner import CellResult, GridReport
        from repro.grid.spec import GridCell

        results = []
        for backend in ("estimated", "measured"):
            cell = GridCell(
                algorithm="hillclimb",
                workload="custom:alpha",
                cost_model="hdd",
                backend=backend,
            )
            results.append(
                CellResult(
                    cell=cell,
                    key=f"key-{backend}",
                    payload={"estimated_cost": 1.0, "backend": backend},
                    cached=False,
                )
            )
        report = GridReport(spec=SPEC, results=results)
        with pytest.raises(KeyError, match="ambiguous"):
            report.cell("hillclimb", "custom:alpha", "hdd")
        measured = report.cell("hillclimb", "custom:alpha", "hdd", backend="measured")
        assert measured.payload["backend"] == "measured"
        with pytest.raises(KeyError):
            report.cell("hillclimb", "custom:alpha", "hdd", backend="sampled")


class TestCancellation:
    def test_pre_set_event_cancels_before_any_work(self, tmp_path):
        event = threading.Event()
        event.set()
        with pytest.raises(GridCancelled) as excinfo:
            run_grid(SPEC, cache_dir=str(tmp_path), cancel_event=event)
        assert excinfo.value.completed == 0
        assert excinfo.value.pending == 8

    def test_mid_run_cancel_keeps_completed_cells_cached(self, tmp_path):
        event = threading.Event()
        seen = []

        def progress(line):
            seen.append(line)
            if len(seen) == 2:
                event.set()  # cancel after the second cell lands

        with pytest.raises(GridCancelled) as excinfo:
            run_grid(
                SPEC, cache_dir=str(tmp_path),
                cancel_event=event, progress=progress,
            )
        assert excinfo.value.completed == 2
        assert excinfo.value.pending == 6
        # The cells completed before the cancel were cached: a clean re-run
        # resumes instead of starting over.
        report = run_grid(SPEC, cache_dir=str(tmp_path))
        assert report.cache_hits == 2 and report.computed == 6

    def test_parallel_run_honours_cancel_event(self, tmp_path):
        event = threading.Event()
        event.set()
        with pytest.raises(GridCancelled):
            run_grid(
                SPEC, cache_dir=str(tmp_path), workers=2, cancel_event=event
            )

    def test_unset_event_changes_nothing(self, tmp_path):
        report = run_grid(
            SPEC, cache_dir=str(tmp_path), cancel_event=threading.Event()
        )
        assert report.computed == 8

    def test_grid_cancelled_is_a_grid_error(self):
        assert issubclass(GridCancelled, GridError)
        error = GridCancelled(completed=3, pending=5)
        assert "5" in str(error) and "3" in str(error)


class TestEvaluatorCacheSharing:
    def test_shared_caches_are_adopted_and_exact(self):
        workload = _tiny_workload("sharing")
        model = HDDCostModel()
        groups = [frozenset({0, 1}), frozenset({2}), frozenset({3})]
        baseline = CostEvaluator(workload, model).evaluate(groups)
        previous = enable_cache_sharing(True)
        try:
            first = CostEvaluator(workload, model)
            second = CostEvaluator(workload, model)
            assert first._signature_costs is second._signature_costs
            assert first.evaluate(groups) == baseline
            assert second.evaluate(groups) == baseline
        finally:
            enable_cache_sharing(previous)
        # With sharing off, evaluators return to private caches.
        third = CostEvaluator(workload, model)
        assert third._signature_costs is not first._signature_costs

    def test_sharing_distinguishes_buffer_sharing_policies(self):
        """Regression: the pool is keyed by describe(), which must spell out
        every behavioural knob — 'hdd' and 'hdd:equal' once collided on one
        cache and served each other's co-read costs."""
        from repro.core.partitioning import Partitioning

        workload = _tiny_workload("policies")
        groups = [frozenset({i}) for i in range(4)]
        proportional = HDDCostModel()
        equal = HDDCostModel(buffer_sharing="equal")
        layout = Partitioning(workload.schema, groups)
        expected_proportional = proportional.workload_cost(workload, layout)
        expected_equal = equal.workload_cost(workload, layout)
        assert expected_proportional != expected_equal
        previous = enable_cache_sharing(True)
        try:
            assert (
                CostEvaluator(workload, proportional).evaluate(groups)
                == expected_proportional
            )
            assert CostEvaluator(workload, equal).evaluate(groups) == expected_equal
        finally:
            enable_cache_sharing(previous)


class TestAdvisorCompare:
    def test_compare_builds_grid_from_advisor_config(self, tmp_path):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        report = advisor.compare(
            workloads=("custom:alpha",),
            cost_models=("hdd",),
            cache_dir=str(tmp_path),
        )
        assert len(report.results) == 1
        assert report.results[0].cell.algorithm == "hillclimb"
        again = advisor.compare(
            workloads=("custom:alpha",),
            cost_models=("hdd",),
            cache_dir=str(tmp_path),
        )
        assert again.cache_hits == 1

    def test_compare_requires_workloads_or_grid(self):
        with pytest.raises(ValueError):
            LayoutAdvisor().compare()

    def test_compare_forwards_trace_and_returns_telemetry(self, tmp_path):
        """Regression: compare() used to drop the observability knobs on the
        floor — a trace path never reached run_grid, so tracing a comparison
        required bypassing the advisor API entirely."""
        from repro.obs.trace import read_trace

        trace_path = str(tmp_path / "compare.jsonl")
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        report = advisor.compare(
            workloads=("custom:alpha",),
            cost_models=("hdd",),
            cache_dir=str(tmp_path / "cache"),
            trace=trace_path,
        )
        header, records = read_trace(trace_path)
        names = {record.get("name") for record in records}
        assert "grid.execute" in names
        assert any(
            record.get("name") == "grid.cell" for record in records
        ), names
        # The telemetry summary rides along on the report, untouched.
        assert report.telemetry is not None
        assert report.telemetry.trace_path == trace_path
        assert report.telemetry.cells_computed == 1

    def test_compare_quiet_flag_controls_progress(self, tmp_path, capsys):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        advisor.compare(
            workloads=("custom:alpha",), cost_models=("hdd",),
            cache_dir=str(tmp_path),
        )
        assert capsys.readouterr().out == ""  # quiet is the default
        advisor.compare(
            workloads=("custom:alpha",), cost_models=("hdd",),
            cache_dir=str(tmp_path), quiet=False,
        )
        assert "cached   hillclimb/custom:alpha/hdd" in capsys.readouterr().out
        lines = []
        advisor.compare(
            workloads=("custom:alpha",), cost_models=("hdd",),
            cache_dir=str(tmp_path), progress=lines.append,
        )
        assert lines == ["cached   hillclimb/custom:alpha/hdd"]


class TestCli:
    def test_cli_runs_and_reports_cache_hits(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cli-cache")
        args = [
            "--grid", "tiny",
            "--algorithms", "hillclimb,navathe",
            "--workloads", "custom:alpha",
            "--cost-models", "hdd",
            "--cache-dir", cache_dir,
        ]
        assert grid_main(args) == 0
        first = capsys.readouterr().out
        assert "2 cells" in first
        assert "2 computed" in first
        assert "Layout quality" in first

        assert grid_main(args) == 0
        second = capsys.readouterr().out
        assert "100.0% cache hits" in second
        # The tables themselves (not the trailing telemetry block, whose
        # timings differ run to run) are reproduced identically from the cache.
        assert (
            first.split("Layout quality")[1].split("\ntelemetry:")[0]
            == second.split("Layout quality")[1].split("\ntelemetry:")[0]
        )

    def test_cli_no_cache(self, capsys):
        args = [
            "--grid", "tiny",
            "--algorithms", "hillclimb",
            "--workloads", "custom:alpha",
            "--cost-models", "hdd",
            "--no-cache",
        ]
        assert grid_main(args) == 0
        out = capsys.readouterr().out
        assert "1 computed" in out

    def test_cli_rejects_unknown_grid(self, capsys):
        with pytest.raises(SystemExit):
            grid_main(["--grid", "nope", "--quiet"])
