"""Unit tests for the table schema model."""

import pytest

from repro.workload.schema import Column, Database, SchemaError, TableSchema


class TestColumn:
    def test_basic_construction(self):
        column = Column("orderkey", 4, "int")
        assert column.name == "orderkey"
        assert column.width == 4

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Column("", 4)

    def test_rejects_non_positive_width(self):
        with pytest.raises(SchemaError):
            Column("x", 0)
        with pytest.raises(SchemaError):
            Column("x", -3)

    def test_of_type_numeric(self):
        assert Column.of_type("a", "int").width == 4
        assert Column.of_type("b", "decimal").width == 8
        assert Column.of_type("c", "date").width == 4

    def test_of_type_character_uses_length(self):
        assert Column.of_type("comment", "varchar", 44).width == 44
        assert Column.of_type("flag", "char", 1).width == 1

    def test_of_type_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            Column.of_type("x", "blob")


class TestTableSchema:
    def test_basic_properties(self, small_schema):
        assert small_schema.attribute_count == 5
        assert small_schema.row_size == 4 + 4 + 4 + 8 + 199
        assert small_schema.total_bytes == small_schema.row_size * 100_000
        assert len(small_schema) == 5

    def test_attribute_names_order(self, small_schema):
        assert small_schema.attribute_names == (
            "partkey", "suppkey", "availqty", "supplycost", "comment",
        )

    def test_index_of(self, small_schema):
        assert small_schema.index_of("partkey") == 0
        assert small_schema.index_of("comment") == 4

    def test_index_of_unknown_raises(self, small_schema):
        with pytest.raises(SchemaError, match="no attribute"):
            small_schema.index_of("nope")

    def test_indices_of_is_sorted(self, small_schema):
        assert small_schema.indices_of(["comment", "partkey"]) == (0, 4)

    def test_subset_row_size(self, small_schema):
        assert small_schema.subset_row_size([0, 1]) == 8
        assert small_schema.subset_row_size([4]) == 199

    def test_rejects_duplicate_columns(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("t", [Column("a", 4), Column("a", 8)], 10)

    def test_rejects_empty_columns(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [], 10)

    def test_rejects_negative_row_count(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", 4)], -1)

    def test_scaled_changes_row_count_only(self, small_schema):
        scaled = small_schema.scaled(2.0)
        assert scaled.row_count == 200_000
        assert scaled.columns == small_schema.columns

    def test_scaled_rejects_non_positive_factor(self, small_schema):
        with pytest.raises(SchemaError):
            small_schema.scaled(0)

    def test_scaled_keeps_at_least_one_row(self, small_schema):
        assert small_schema.scaled(1e-9).row_count == 1

    def test_with_row_count(self, small_schema):
        assert small_schema.with_row_count(42).row_count == 42

    def test_describe_mentions_every_column(self, small_schema):
        text = small_schema.describe()
        for column in small_schema.columns:
            assert column.name in text


class TestDatabase:
    def test_add_and_lookup(self, small_schema):
        database = Database("db")
        database.add(small_schema)
        assert database.table("partsupp_small") is small_schema
        assert database.table_names() == ["partsupp_small"]
        assert len(database) == 1

    def test_duplicate_table_rejected(self, small_schema):
        database = Database("db")
        database.add(small_schema)
        with pytest.raises(SchemaError):
            database.add(small_schema)

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError):
            Database("db").table("missing")

    def test_scaled_scales_all_tables(self, small_schema):
        database = Database("db")
        database.add(small_schema)
        scaled = database.scaled(0.5)
        assert scaled.table("partsupp_small").row_count == 50_000
