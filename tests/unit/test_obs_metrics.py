"""Unit tests for :mod:`repro.obs.metrics`.

The metrics layer underpins cross-process accounting: workers snapshot,
execute, and ship ``delta(baseline)`` back over the pipe; the supervisor
``merge``s the deltas.  These tests pin the snapshot/delta/merge algebra and
the in-place reset contract that keeps module-held instrument references
valid.
"""

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SNAPSHOT_FORMAT,
    counter,
    registry,
)


class TestInstruments:
    def test_counter_inc_and_bare_increment(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        c.value += 1  # the hot-path form
        assert c.value == 6

    def test_gauge_last_value_wins(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_tracks_count_total_min_max_mean(self):
        h = Histogram("x")
        assert h.mean == 0.0
        for value in (2.0, 8.0, 5.0):
            h.observe(value)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0 and h.max == 8.0
        assert h.mean == 5.0


class TestRegistry:
    def test_get_or_create_returns_the_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_omits_zero_counters_and_empty_histograms(self):
        reg = MetricsRegistry()
        reg.counter("zero")
        reg.counter("live").inc(2)
        reg.histogram("empty")
        reg.histogram("seen").observe(1.0)
        snap = reg.snapshot()
        assert snap["format"] == SNAPSHOT_FORMAT
        assert snap["counters"] == {"live": 2}
        assert list(snap["histograms"]) == ["seen"]

    def test_delta_subtracts_the_baseline(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.histogram("h").observe(10.0)
        baseline = reg.snapshot()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(4.0)
        delta = reg.delta(baseline)
        assert delta["counters"] == {"c": 2}
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["total"] == pytest.approx(4.0)

    def test_delta_is_empty_when_nothing_changed(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        delta = reg.delta(reg.snapshot())
        assert delta["counters"] == {}
        assert delta["histograms"] == {}

    def test_merge_adds_counters_and_folds_histograms(self):
        parent = MetricsRegistry()
        parent.counter("c").inc(1)
        parent.histogram("h").observe(5.0)
        parent.merge(
            {
                "counters": {"c": 2, "new": 3},
                "gauges": {"g": 7.5},
                "histograms": {"h": {"count": 2, "total": 3.0, "min": 1.0, "max": 2.0}},
            }
        )
        assert parent.counter("c").value == 3
        assert parent.counter("new").value == 3
        assert parent.gauge("g").value == 7.5
        h = parent.histogram("h")
        assert h.count == 3
        assert h.total == pytest.approx(8.0)
        assert h.min == 1.0 and h.max == 5.0

    def test_worker_delta_merge_roundtrip(self):
        # The grid's scheme: fork inherits parent values, the delta cancels
        # them, the merged parent sees only work done inside the task.
        parent = MetricsRegistry()
        parent.counter("c").inc(10)
        worker = MetricsRegistry()
        worker.merge(parent.snapshot())  # "fork": child starts at parent state
        baseline = worker.snapshot()
        worker.counter("c").inc(4)
        parent.merge(worker.delta(baseline))
        assert parent.counter("c").value == 14

    def test_reset_zeroes_in_place(self):
        reg = MetricsRegistry()
        held = reg.counter("c")
        held.inc(5)
        hist = reg.histogram("h")
        hist.observe(2.0)
        reg.reset()
        assert held.value == 0
        assert hist.count == 0 and hist.min is None and hist.max is None
        # The held reference is still the registered instrument.
        assert reg.counter("c") is held


class TestModuleGlobals:
    def test_module_counter_lives_on_the_global_registry(self):
        c = counter("test.obs.metrics.probe")
        before = c.value
        c.inc()
        assert registry().counter("test.obs.metrics.probe").value == before + 1
