"""Unit tests for the attribute-disjoint knapsack used by Trojan."""

import pytest

from repro.algorithms.support.knapsack import KnapsackItem, solve_knapsack


def item(attributes, benefit):
    return KnapsackItem(attributes=frozenset(attributes), benefit=benefit)


class TestKnapsackItem:
    def test_rejects_empty_attribute_set(self):
        with pytest.raises(ValueError):
            KnapsackItem(attributes=frozenset(), benefit=1.0)


class TestSolveKnapsack:
    def test_empty_input(self):
        assert solve_knapsack([]) == []

    def test_single_item(self):
        items = [item({0, 1}, 5.0)]
        assert solve_knapsack(items) == items

    def test_picks_disjoint_combination_over_single_big_item(self):
        items = [
            item({0, 1, 2}, 5.0),
            item({0, 1}, 4.0),
            item({2, 3}, 4.0),
        ]
        chosen = solve_knapsack(items)
        benefits = sum(chosen_item.benefit for chosen_item in chosen)
        assert benefits == pytest.approx(8.0)
        # The two smaller, disjoint items beat the single overlapping one.
        assert len(chosen) == 2

    def test_respects_disjointness(self):
        items = [item({0, 1}, 3.0), item({1, 2}, 3.0), item({2, 3}, 2.0)]
        chosen = solve_knapsack(items)
        used = set()
        for chosen_item in chosen:
            assert not used & chosen_item.attributes
            used |= chosen_item.attributes

    def test_max_items_cap(self):
        items = [item({i}, 1.0) for i in range(5)]
        chosen = solve_knapsack(items, max_items=2)
        assert len(chosen) == 2

    def test_negative_benefit_items_are_skipped(self):
        items = [item({0}, -1.0), item({1}, 2.0)]
        chosen = solve_knapsack(items)
        assert chosen == [items[1]]

    def test_optimal_against_exhaustive_search(self):
        """Cross-check against brute force over all subsets for a small instance."""
        from itertools import combinations

        items = [
            item({0, 1}, 4.0),
            item({2}, 1.5),
            item({1, 2}, 3.0),
            item({3, 4}, 2.5),
            item({0, 3}, 3.5),
        ]

        def best_exhaustive():
            best = 0.0
            for size in range(len(items) + 1):
                for subset in combinations(items, size):
                    used = set()
                    ok = True
                    for candidate in subset:
                        if used & candidate.attributes:
                            ok = False
                            break
                        used |= candidate.attributes
                    if ok:
                        best = max(best, sum(c.benefit for c in subset))
            return best

        chosen = solve_knapsack(items)
        assert sum(c.benefit for c in chosen) == pytest.approx(best_exhaustive())

    def test_deterministic(self):
        items = [item({0}, 1.0), item({1}, 1.0), item({2}, 1.0)]
        assert solve_knapsack(items) == solve_knapsack(items)
