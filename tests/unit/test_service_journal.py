"""Unit tests for the job journal: appends, replay, compaction, degradation.

The replay fold must converge — identically — for clean journals, torn
tails, duplicated records and out-of-order records, because a crash can
produce any of those shapes.  The property-style tests drive the fold with
seeded random transition sequences against an independent in-test model.
"""

import json
import random

import pytest

from repro.service import faults as service_faults
from repro.service.journal import (
    DEFAULT_FILENAME,
    JobJournal,
    snapshot_record,
)
from repro.service.jobs import Job


@pytest.fixture
def journal(tmp_path):
    instance = JobJournal(str(tmp_path / DEFAULT_FILENAME))
    yield instance
    instance.close()


def _submit(journal, job_id, kind="compare", request=None):
    assert journal.append(
        "submitted", job_id, kind=kind, request=request or {"grid": "tiny"}
    )


class TestAppendAndReplay:
    def test_round_trip_done_job_carries_result(self, journal):
        _submit(journal, "compare-aaa")
        journal.append("running", "compare-aaa")
        journal.append("done", "compare-aaa", result={"cells": [1, 2]})
        replay = journal.replay()
        job = replay.jobs["compare-aaa"]
        assert job.state == "done"
        assert job.result == {"cells": [1, 2]}
        assert job.error is None
        assert replay.torn == 0 and replay.dropped == 0
        assert replay.interrupted == []

    def test_failed_job_carries_error(self, journal):
        _submit(journal, "compare-bbb")
        journal.append("running", "compare-bbb")
        journal.append(
            "failed", "compare-bbb", error={"type": "RuntimeError", "message": "x"}
        )
        job = journal.replay().jobs["compare-bbb"]
        assert job.state == "failed"
        assert job.error == {"type": "RuntimeError", "message": "x"}

    def test_interrupted_jobs_are_reported(self, journal):
        _submit(journal, "compare-queued")
        _submit(journal, "compare-running")
        journal.append("running", "compare-running")
        replay = journal.replay()
        assert {job.id for job in replay.interrupted} == {
            "compare-queued",
            "compare-running",
        }

    def test_missing_file_is_an_empty_replay(self, tmp_path):
        journal = JobJournal(str(tmp_path / "never-written.jsonl"))
        replay = journal.replay()
        assert replay.jobs == {} and replay.records == 0

    def test_unknown_event_name_is_rejected_at_append(self, journal):
        with pytest.raises(ValueError):
            journal.append("exploded", "compare-aaa")

    def test_pending_cancel_request_resolves_to_cancelled(self, journal):
        _submit(journal, "compare-ccc")
        journal.append("running", "compare-ccc")
        journal.append("cancel-requested", "compare-ccc")
        # The process died before the executor reached a checkpoint: the
        # client abandoned this job, so replay must not resurrect it.
        job = journal.replay().jobs["compare-ccc"]
        assert job.state == "cancelled"

    def test_resubmission_of_terminal_job_requeues_on_replay(self, journal):
        _submit(journal, "compare-ddd")
        journal.append("running", "compare-ddd")
        journal.append(
            "failed", "compare-ddd", error={"type": "E", "message": "m"}
        )
        _submit(journal, "compare-ddd")  # the retry that never ran
        job = journal.replay().jobs["compare-ddd"]
        assert job.state == "queued"
        assert job.submissions == 2
        assert job.error is None


class TestTornAndCorrupt:
    def test_torn_final_line_is_skipped_not_fatal(self, journal):
        _submit(journal, "compare-aaa")
        journal.append("running", "compare-aaa")
        journal.append("done", "compare-aaa", result={"ok": True})
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"format": 1, "event": "subm')  # crash mid-write
        replay = journal.replay()
        assert replay.torn == 1
        assert replay.jobs["compare-aaa"].state == "done"

    def test_garbage_in_the_middle_is_skipped(self, journal):
        _submit(journal, "compare-aaa")
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        journal.append("running", "compare-aaa")
        replay = journal.replay()
        assert replay.torn == 1
        assert replay.jobs["compare-aaa"].state == "running"

    def test_event_for_unknown_job_is_dropped(self, journal):
        # The submitted line was torn away: nothing to rebuild the job from.
        journal.append("done", "compare-ghost", result={"ok": True})
        replay = journal.replay()
        assert replay.dropped == 1
        assert "compare-ghost" not in replay.jobs

    def test_non_object_records_are_dropped(self, journal):
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write("[1, 2, 3]\n")
            handle.write('"a string"\n')
        replay = journal.replay()
        assert replay.dropped == 2


class TestCompaction:
    def test_compact_rewrites_to_snapshots(self, journal):
        _submit(journal, "compare-aaa")
        journal.append("running", "compare-aaa")
        journal.append("done", "compare-aaa", result={"ok": True})
        job = Job(
            id="compare-aaa", kind="compare", request={"grid": "tiny"},
            state="done", result={"ok": True},
        )
        assert journal.compact([snapshot_record(job)])
        with open(journal.path, encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert len(lines) == 1 and lines[0]["event"] == "snapshot"
        replayed = journal.replay().jobs["compare-aaa"]
        assert replayed.state == "done"
        assert replayed.result == {"ok": True}

    def test_snapshot_preserves_cancel_requested(self, journal):
        job = Job(
            id="compare-bbb", kind="compare", request={}, state="running",
            cancel_requested=True,
        )
        journal.compact([snapshot_record(job)])
        # Replay resolves the still-pending cancel request to cancelled even
        # though the snapshot recorded the job as running.
        assert journal.replay().jobs["compare-bbb"].state == "cancelled"

    def test_should_compact_tracks_append_volume(self, tmp_path):
        journal = JobJournal(str(tmp_path / "j.jsonl"), compact_every=3)
        _submit(journal, "compare-aaa")
        journal.append("running", "compare-aaa")
        assert not journal.should_compact
        journal.append("done", "compare-aaa", result={})
        assert journal.should_compact
        journal.compact([])
        assert not journal.should_compact
        journal.close()

    def test_invalid_compact_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JobJournal(str(tmp_path / "j.jsonl"), compact_every=0)


class TestDegradation:
    def test_append_oserror_degrades_and_recovers(self, journal):
        plan = {"journal.append": {"kind": "oserror", "times": 1}}
        with service_faults.injected(plan):
            with pytest.warns(RuntimeWarning, match="journal degraded"):
                assert journal.append("submitted", "x", kind="k", request={}) is False
            assert journal.append_failures == 1
            # The very next append lands: the handle was reopened.
            _submit(journal, "compare-aaa")
        assert journal.appends == 1
        assert "compare-aaa" in journal.replay().jobs


# -- property-style round trips ------------------------------------------------


def _model_fold(events):
    """An independent (dict-based) model of the replay fold for one job."""
    state = None
    for event in events:
        if event == "submitted":
            if state is None:
                state = {"state": "queued", "submissions": 1, "cancel": False}
            else:
                state["submissions"] += 1
                if state["state"] in ("failed", "cancelled"):
                    state.update(state="queued", cancel=False)
        elif state is None:
            continue  # dropped: unknown job
        elif event == "requeued":
            state["submissions"] += 1
            state.update(state="queued", cancel=False)
        elif event == "running":
            if state["state"] == "queued":
                state["state"] = "running"
        elif event == "cancel-requested":
            state["cancel"] = True
        elif event in ("done", "failed", "cancelled"):
            state["state"] = event
    if state and state["cancel"] and state["state"] in ("queued", "running"):
        state["state"] = "cancelled"
    return state


class TestReplayProperties:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_transition_sequences_match_the_model(self, tmp_path, seed):
        rng = random.Random(seed)
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        events = ("submitted", "requeued", "running", "done", "failed",
                  "cancelled", "cancel-requested")
        per_job = {}
        for _ in range(rng.randint(20, 60)):
            job_id = f"compare-{rng.randint(0, 5)}"
            event = rng.choice(events)
            if event == "submitted":
                _submit(journal, job_id)
            elif event == "done":
                journal.append(event, job_id, result={"r": rng.randint(0, 9)})
            elif event == "failed":
                journal.append(event, job_id, error={"type": "E", "message": "m"})
            else:
                journal.append(event, job_id)
            per_job.setdefault(job_id, []).append(event)
        replay = journal.replay()
        journal.close()
        for job_id, events_seen in per_job.items():
            expected = _model_fold(events_seen)
            if expected is None:
                assert job_id not in replay.jobs
                continue
            job = replay.jobs[job_id]
            assert job.state == expected["state"], (job_id, events_seen)
            assert job.submissions == expected["submissions"]

    @pytest.mark.parametrize("seed", range(4))
    def test_duplicated_terminal_records_converge(self, tmp_path, seed):
        """Appending every post-submission record twice changes nothing
        terminal: the latest terminal record wins either way."""
        rng = random.Random(1000 + seed)
        clean = JobJournal(str(tmp_path / "clean.jsonl"))
        doubled = JobJournal(str(tmp_path / "doubled.jsonl"))
        for index in range(rng.randint(3, 8)):
            job_id = f"compare-{index}"
            outcome = rng.choice(("done", "failed", "cancelled"))
            for target, repeats in ((clean, 1), (doubled, 2)):
                _submit(target, job_id)
                for _ in range(repeats):
                    target.append("running", job_id)
                    if outcome == "done":
                        target.append(outcome, job_id, result={"i": index})
                    elif outcome == "failed":
                        target.append(
                            outcome, job_id,
                            error={"type": "E", "message": str(index)},
                        )
                    else:
                        target.append(outcome, job_id)
        clean_replay, doubled_replay = clean.replay(), doubled.replay()
        clean.close(), doubled.close()
        assert set(clean_replay.jobs) == set(doubled_replay.jobs)
        for job_id, job in clean_replay.jobs.items():
            other = doubled_replay.jobs[job_id]
            assert job.state == other.state
            assert job.result == other.result
            assert job.error == other.error

    def test_truncated_journal_prefix_is_always_consistent(self, tmp_path):
        """Cutting the journal after any byte yields a replayable file whose
        jobs are each in a valid state — the crash-anywhere property."""
        journal = JobJournal(str(tmp_path / "j.jsonl"))
        _submit(journal, "compare-a")
        journal.append("running", "compare-a")
        journal.append("done", "compare-a", result={"ok": True})
        _submit(journal, "compare-b")
        journal.append("running", "compare-b")
        journal.close()
        with open(journal.path, "rb") as handle:
            content = handle.read()
        valid_states = {"queued", "running", "done", "failed", "cancelled"}
        for cut in range(len(content) + 1):
            truncated_path = tmp_path / "truncated.jsonl"
            truncated_path.write_bytes(content[:cut])
            replay = JobJournal(str(truncated_path)).replay()
            assert replay.torn <= 1  # at most the one torn line per cut
            for job in replay.jobs.values():
                assert job.state in valid_states
                if job.state == "done":
                    assert job.result == {"ok": True}
