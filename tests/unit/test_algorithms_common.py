"""Cross-cutting tests that every algorithm must satisfy."""

import pytest

from repro.core.algorithm import (
    AlgorithmNotFoundError,
    available_algorithms,
    get_algorithm,
)
from repro.core.partitioning import Partitioning
from repro.cost.hdd import HDDCostModel
from repro.workload import synthetic

ALL_ALGORITHMS = [
    "autopart",
    "brute-force",
    "column",
    "hillclimb",
    "hyrise",
    "navathe",
    "o2p",
    "row",
    "trojan",
]

HEURISTICS = ["autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan"]


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert set(available_algorithms()) == set(ALL_ALGORITHMS)

    def test_unknown_algorithm_raises(self):
        with pytest.raises(AlgorithmNotFoundError):
            get_algorithm("quicksort")

    def test_get_algorithm_forwards_kwargs(self):
        algorithm = get_algorithm("trojan", interestingness_threshold=0.9)
        assert algorithm.interestingness_threshold == 0.9

    def test_classification_attributes_present(self):
        for name in HEURISTICS + ["brute-force"]:
            algorithm = get_algorithm(name)
            assert algorithm.search_strategy
            assert algorithm.starting_point
            assert algorithm.candidate_pruning


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
class TestAlgorithmContract:
    def test_produces_valid_partitioning(self, name, partsupp_workload, hdd_model):
        result = get_algorithm(name).run(partsupp_workload, hdd_model)
        layout = result.partitioning
        assert isinstance(layout, Partitioning)
        # Re-validating raises if the layout is not complete and disjoint.
        Partitioning(layout.schema, layout.partitions)

    def test_result_bookkeeping(self, name, partsupp_workload, hdd_model):
        result = get_algorithm(name).run(partsupp_workload, hdd_model)
        assert result.algorithm == name
        assert result.optimization_time >= 0.0
        assert result.estimated_cost > 0.0
        assert result.workload_name == partsupp_workload.name
        assert "hdd" in result.cost_model

    def test_estimated_cost_matches_cost_model(self, name, partsupp_workload, hdd_model):
        result = get_algorithm(name).run(partsupp_workload, hdd_model)
        recomputed = hdd_model.workload_cost(partsupp_workload, result.partitioning)
        assert result.estimated_cost == pytest.approx(recomputed)


@pytest.mark.parametrize("name", HEURISTICS)
class TestHeuristicQuality:
    def test_never_worse_than_row_layout(self, name, partsupp_workload, hdd_model):
        from repro.core.partitioning import row_partitioning

        row_cost = hdd_model.workload_cost(
            partsupp_workload, row_partitioning(partsupp_workload.schema)
        )
        result = get_algorithm(name).run(partsupp_workload, hdd_model)
        assert result.estimated_cost <= row_cost * 1.0001

    def test_deterministic(self, name, customer_workload, hdd_model):
        first = get_algorithm(name).run(customer_workload, hdd_model)
        second = get_algorithm(name).run(customer_workload, hdd_model)
        assert first.partitioning == second.partitioning

    def test_handles_single_attribute_table(self, name, hdd_model):
        schema = synthetic.synthetic_table(1, row_count=100, random_state=0)
        workload = synthetic.random_workload(schema, 3, random_state=0)
        result = get_algorithm(name).run(workload, hdd_model)
        assert result.partitioning.partition_count == 1

    def test_handles_single_query_workload(self, name, hdd_model):
        schema = synthetic.synthetic_table(6, row_count=1000, random_state=1)
        workload = synthetic.random_workload(
            schema, 1, min_attributes=2, max_attributes=3, random_state=1
        )
        result = get_algorithm(name).run(workload, hdd_model)
        Partitioning(result.partitioning.schema, result.partitioning.partitions)
