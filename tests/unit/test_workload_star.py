"""Unit tests for the synthetic star-schema workload generator."""

import pytest

from repro.workload.star import (
    default_star_workload,
    star_fact_schema,
    star_workload,
    tiny_star_workload,
)


class TestStarFactSchema:
    def test_column_layout(self):
        schema = star_fact_schema(num_dimensions=3, num_measures=2, row_count=1000)
        names = schema.attribute_names
        assert names[:2] == ("orderkey", "linenumber")
        assert names[2:5] == ("d1_key", "d2_key", "d3_key")
        assert names[5:7] == ("m1", "m2")
        assert names[7:] == ("priority", "shipmode", "comment")
        assert schema.row_count == 1000

    def test_measure_widths_cycle(self):
        schema = star_fact_schema(num_dimensions=1, num_measures=6)
        widths = [schema.width_of(schema.index_of(f"m{i + 1}")) for i in range(6)]
        assert widths == [8, 4, 8, 4, 8, 8]

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            star_fact_schema(num_dimensions=0)
        with pytest.raises(ValueError):
            star_fact_schema(num_measures=0)
        with pytest.raises(ValueError):
            star_workload(flights=0)


class TestStarWorkload:
    def test_deterministic_for_a_seed(self):
        first = star_workload(random_state=7)
        second = star_workload(random_state=7)
        assert [q.attribute_indices for q in first] == [
            q.attribute_indices for q in second
        ]
        assert [q.weight for q in first] == [q.weight for q in second]
        different = star_workload(random_state=8)
        assert [q.attribute_indices for q in first] != [
            q.attribute_indices for q in different
        ]

    def test_flight_structure(self):
        workload = star_workload(flights=3, queries_per_flight=2, random_state=0)
        assert workload.query_count == 6
        names = [q.name for q in workload]
        assert names == ["F1.1", "F1.2", "F2.1", "F2.2", "F3.1", "F3.2"]
        # Earlier flights run more often.
        assert workload.query("F1.1").weight > workload.query("F3.1").weight

    def test_drilldown_grows_footprints_within_a_flight(self):
        workload = star_workload(
            num_dimensions=6, flights=2, queries_per_flight=3, random_state=1
        )
        for flight in (1, 2):
            sizes = [
                len(workload.query(f"F{flight}.{step}").attribute_indices)
                for step in (1, 2, 3)
            ]
            assert sizes == sorted(sizes)
            # Consecutive drill-downs extend the previous footprint.
            inner = workload.query(f"F{flight}.1").index_set
            outer = workload.query(f"F{flight}.2").index_set
            assert inner <= outer

    def test_presets(self):
        tiny = tiny_star_workload()
        assert tiny.attribute_count == 9
        assert tiny.name == "star-tiny"
        default = default_star_workload()
        assert default.attribute_count == 18
        # Presets are deterministic (the grid cache depends on this).
        assert [q.attribute_indices for q in tiny_star_workload()] == [
            q.attribute_indices for q in tiny
        ]
