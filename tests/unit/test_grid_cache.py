"""Unit tests for the grid result cache: trust, corruption, staleness."""

import json

import pytest

from repro.cost.hdd import HDDCostModel
from repro.grid.cache import (
    ResultCache,
    canonical_json,
    cell_inputs,
    content_key,
    deterministic_payload,
    workload_fingerprint,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def workload():
    schema = TableSchema(
        "t", [Column("a", 4), Column("b", 8), Column("c", 16)], 50_000
    )
    return Workload(
        schema,
        [Query("Q1", ["a", "b"], weight=2.0), Query("Q2", ["c"])],
        name="cache-test",
    )


@pytest.fixture
def inputs(workload):
    return cell_inputs(
        "hillclimb", {}, "custom:cache-test", workload, "hdd", HDDCostModel()
    )


PAYLOAD = {
    "algorithm": "hillclimb",
    "layout": [["a", "b"], ["c"]],
    "estimated_cost": 1.25,
    "timing": {"optimization_time": 0.004},
}


class TestContentKey:
    def test_key_is_stable_across_processes(self, inputs):
        # Pure function of content — recomputing yields the same digest.
        assert content_key(inputs) == content_key(json.loads(canonical_json(inputs)))

    def test_key_changes_with_any_input(self, workload, inputs):
        key = content_key(inputs)
        for variation in (
            cell_inputs("autopart", {}, "custom:cache-test", workload, "hdd", HDDCostModel()),
            cell_inputs("hillclimb", {"naive_costing": True}, "custom:cache-test",
                        workload, "hdd", HDDCostModel()),
            cell_inputs("hillclimb", {}, "custom:cache-test", workload, "mm",
                        HDDCostModel(buffer_sharing="equal")),
        ):
            assert content_key(variation) != key

    def test_key_changes_with_workload_content(self, workload, inputs):
        reweighted = Workload(
            workload.schema,
            [Query("Q1", ["a", "b"], weight=3.0), Query("Q2", ["c"])],
            name="cache-test",
        )
        changed = cell_inputs(
            "hillclimb", {}, "custom:cache-test", reweighted, "hdd", HDDCostModel()
        )
        assert content_key(changed) != content_key(inputs)

    def test_fingerprint_covers_schema_and_queries(self, workload):
        fingerprint = workload_fingerprint(workload)
        assert fingerprint["schema"]["row_count"] == 50_000
        assert fingerprint["schema"]["columns"] == [["a", 4], ["b", 8], ["c", 16]]
        assert [q[0] for q in fingerprint["queries"]] == ["Q1", "Q2"]


class TestResultCache:
    def test_roundtrip(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        assert cache.load(key) is None
        cache.store(key, inputs, PAYLOAD)
        assert cache.load(key) == PAYLOAD
        assert cache.misses == 1 and cache.hits == 1 and cache.stores == 1

    def test_cached_payload_is_byte_identical(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        loaded = ResultCache(tmp_path).load(key)
        assert canonical_json(loaded).encode() == canonical_json(PAYLOAD).encode()

    def test_unparseable_entry_is_recomputed_not_trusted(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        cache.path_for(key).write_text("{ not json", encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.corrupt == 1
        # Overwriting repairs the entry.
        fresh.store(key, inputs, PAYLOAD)
        assert fresh.load(key) == PAYLOAD

    def test_tampered_payload_fails_checksum(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        path = cache.path_for(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["payload"]["estimated_cost"] = 0.0  # silent corruption
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.corrupt == 1

    def test_stale_inputs_fail_key_check(self, tmp_path, inputs, workload):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        path = cache.path_for(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        # An entry computed from *different* inputs parked under this key
        # (e.g. a hand-copied file) must not be trusted.
        entry["inputs"]["algorithm"] = "autopart"
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.stale == 1

    def test_wrong_format_version_misses(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        path = cache.path_for(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["format"] = 999
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None

    def test_statistics_and_describe(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.load(key)
        cache.store(key, inputs, PAYLOAD)
        cache.load(key)
        assert cache.lookups == 2
        assert cache.hit_rate == 0.5
        assert "50.0% hit rate" in cache.describe()


class TestDeterministicPayload:
    def test_strips_only_timing(self):
        view = deterministic_payload(PAYLOAD)
        assert "timing" not in view
        assert view["estimated_cost"] == PAYLOAD["estimated_cost"]
        assert set(PAYLOAD) - set(view) == {"timing"}
