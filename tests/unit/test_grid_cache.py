"""Unit tests for the grid result cache: trust, corruption, staleness."""

import json

import pytest

from repro.cost.disk import DiskCharacteristics, KB
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.exec.executor import DEFAULT_MEASURED_ROWS
from repro.grid.cache import (
    ResultCache,
    canonical_json,
    cell_inputs,
    content_key,
    deterministic_payload,
    workload_fingerprint,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def workload():
    schema = TableSchema(
        "t", [Column("a", 4), Column("b", 8), Column("c", 16)], 50_000
    )
    return Workload(
        schema,
        [Query("Q1", ["a", "b"], weight=2.0), Query("Q2", ["c"])],
        name="cache-test",
    )


@pytest.fixture
def inputs(workload):
    return cell_inputs(
        "hillclimb", {}, "custom:cache-test", workload, "hdd", HDDCostModel()
    )


PAYLOAD = {
    "algorithm": "hillclimb",
    "layout": [["a", "b"], ["c"]],
    "estimated_cost": 1.25,
    "timing": {"optimization_time": 0.004},
}


class TestContentKey:
    def test_key_is_stable_across_processes(self, inputs):
        # Pure function of content — recomputing yields the same digest.
        assert content_key(inputs) == content_key(json.loads(canonical_json(inputs)))

    def test_key_changes_with_any_input(self, workload, inputs):
        key = content_key(inputs)
        for variation in (
            cell_inputs("autopart", {}, "custom:cache-test", workload, "hdd", HDDCostModel()),
            cell_inputs("hillclimb", {"naive_costing": True}, "custom:cache-test",
                        workload, "hdd", HDDCostModel()),
            cell_inputs("hillclimb", {}, "custom:cache-test", workload, "mm",
                        HDDCostModel(buffer_sharing="equal")),
        ):
            assert content_key(variation) != key

    def test_key_changes_with_workload_content(self, workload, inputs):
        reweighted = Workload(
            workload.schema,
            [Query("Q1", ["a", "b"], weight=3.0), Query("Q2", ["c"])],
            name="cache-test",
        )
        changed = cell_inputs(
            "hillclimb", {}, "custom:cache-test", reweighted, "hdd", HDDCostModel()
        )
        assert content_key(changed) != content_key(inputs)

    def test_fingerprint_covers_schema_and_queries(self, workload):
        fingerprint = workload_fingerprint(workload)
        assert fingerprint["schema"]["row_count"] == 50_000
        assert fingerprint["schema"]["columns"] == [["a", 4], ["b", 8], ["c", 16]]
        assert [q[0] for q in fingerprint["queries"]] == ["Q1", "Q2"]


class TestResultCache:
    def test_roundtrip(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        assert cache.load(key) is None
        cache.store(key, inputs, PAYLOAD)
        assert cache.load(key) == PAYLOAD
        assert cache.misses == 1 and cache.hits == 1 and cache.stores == 1

    def test_cached_payload_is_byte_identical(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        loaded = ResultCache(tmp_path).load(key)
        assert canonical_json(loaded).encode() == canonical_json(PAYLOAD).encode()

    def test_unparseable_entry_is_recomputed_not_trusted(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        cache.path_for(key).write_text("{ not json", encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.corrupt == 1
        # Overwriting repairs the entry.
        fresh.store(key, inputs, PAYLOAD)
        assert fresh.load(key) == PAYLOAD

    def test_tampered_payload_fails_checksum(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        path = cache.path_for(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["payload"]["estimated_cost"] = 0.0  # silent corruption
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.corrupt == 1

    def test_stale_inputs_fail_key_check(self, tmp_path, inputs, workload):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        path = cache.path_for(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        # An entry computed from *different* inputs parked under this key
        # (e.g. a hand-copied file) must not be trusted.
        entry["inputs"]["algorithm"] = "autopart"
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.stale == 1

    def test_wrong_format_version_misses(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        path = cache.path_for(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["format"] = 999
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None

    def test_statistics_and_describe(self, tmp_path, inputs):
        cache = ResultCache(tmp_path)
        key = content_key(inputs)
        cache.load(key)
        cache.store(key, inputs, PAYLOAD)
        cache.load(key)
        assert cache.lookups == 2
        assert cache.hit_rate == 0.5
        assert "50.0% hit rate" in cache.describe()


class TestMeasuredCellStaleness:
    """A measured result computed from one data seed / scale / disk must be a
    cache miss — never a stale hit — for any other."""

    def _measured_inputs(self, workload, model=None, **measurement):
        return cell_inputs(
            "hillclimb", {}, "custom:cache-test", workload, "hdd",
            model if model is not None else HDDCostModel(),
            backend="measured", measurement=measurement,
        )

    def test_changed_data_seed_is_a_miss(self, tmp_path, workload):
        cache = ResultCache(tmp_path)
        seed0 = self._measured_inputs(workload, data_seed=0)
        key0 = content_key(seed0)
        cache.store(key0, seed0, PAYLOAD)
        key1 = content_key(self._measured_inputs(workload, data_seed=1))
        assert key1 != key0
        assert cache.load(key1) is None
        assert cache.misses == 1 and cache.stale == 0

    def test_changed_measured_scale_is_a_miss(self, tmp_path, workload):
        cache = ResultCache(tmp_path)
        small = self._measured_inputs(workload, rows=2_000)
        cache.store(content_key(small), small, PAYLOAD)
        big = content_key(self._measured_inputs(workload, rows=4_000))
        assert big != content_key(small)
        assert cache.load(big) is None

    def test_changed_disk_characteristics_are_a_miss(self, workload):
        default = self._measured_inputs(workload)
        shrunk = self._measured_inputs(
            workload,
            model=HDDCostModel(DiskCharacteristics(buffer_size=80 * KB)),
        )
        assert content_key(default) != content_key(shrunk)
        # The execution fingerprint itself names the disk, independently of
        # the cost-model parameter fingerprint.
        assert default["execution"]["disk"] != shrunk["execution"]["disk"]

    def test_explicit_defaults_hash_like_omitted_defaults(self, workload):
        implicit = self._measured_inputs(workload)
        explicit = self._measured_inputs(
            workload, rows=DEFAULT_MEASURED_ROWS, data_seed=0
        )
        assert content_key(implicit) == content_key(explicit)

    def test_rows_beyond_the_schema_hash_like_the_cap(self, workload):
        # The executor caps at the schema's 50k rows, so two requests above
        # the cap execute identically and must share one entry.
        over_a = self._measured_inputs(workload, rows=60_000)
        over_b = self._measured_inputs(workload, rows=90_000)
        at_cap = self._measured_inputs(workload, rows=50_000)
        assert content_key(over_a) == content_key(over_b) == content_key(at_cap)
        # Below the cap the requested count is the effective one.
        assert content_key(self._measured_inputs(workload, rows=10_000)) != (
            content_key(at_cap)
        )

    def test_measured_and_estimated_never_share_an_entry(self, workload):
        estimated = cell_inputs(
            "hillclimb", {}, "custom:cache-test", workload, "hdd", HDDCostModel()
        )
        measured = self._measured_inputs(workload)
        assert content_key(estimated) != content_key(measured)

    def test_estimated_inputs_are_unchanged_by_the_backend_field(self, workload):
        # Backwards compatibility: estimated cells must hash exactly the
        # pre-measured-backend inputs so existing caches stay valid.
        inputs = cell_inputs(
            "hillclimb", {}, "custom:cache-test", workload, "hdd", HDDCostModel(),
            backend="estimated", measurement={},
        )
        assert "backend" not in inputs and "execution" not in inputs

    def test_diskless_models_fingerprint_without_a_disk(self, workload):
        inputs = cell_inputs(
            "hillclimb", {}, "custom:cache-test", workload, "mainmemory",
            MainMemoryCostModel(), backend="measured", measurement={},
        )
        assert inputs["execution"]["disk"] is None

    def test_hand_copied_measured_entry_fails_the_stale_check(
        self, tmp_path, workload
    ):
        # The existing corrupt-entry protections extend to measured entries:
        # an entry whose stored inputs carry a different data seed than its
        # key claims is rejected as stale, not trusted.
        cache = ResultCache(tmp_path)
        inputs = self._measured_inputs(workload, data_seed=0)
        key = content_key(inputs)
        cache.store(key, inputs, PAYLOAD)
        path = cache.path_for(key)
        entry = json.loads(path.read_text(encoding="utf-8"))
        entry["inputs"]["execution"]["data_seed"] = 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.stale == 1


class TestDeterministicPayload:
    def test_strips_only_timing(self):
        view = deterministic_payload(PAYLOAD)
        assert "timing" not in view
        assert view["estimated_cost"] == PAYLOAD["estimated_cost"]
        assert set(PAYLOAD) - set(view) == {"timing"}
