"""Unit tests for the deterministic fault-injection harness and retry policy."""

import os

import pytest

from repro.grid.faults import (
    DIE_EXIT_CODE,
    ENV_VAR,
    Fault,
    FaultPlan,
    FaultPlanError,
    InjectedFaultError,
    TransientInjectedError,
    active_fault,
    active_plan,
    coerce_plan,
    injected,
    install,
    trigger,
)
from repro.grid.runner import RetryPolicy


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            Fault(kind="explode")

    def test_transient_needs_positive_attempts(self):
        with pytest.raises(FaultPlanError):
            Fault(kind="transient", attempts=0)

    def test_hang_needs_positive_seconds(self):
        with pytest.raises(FaultPlanError):
            Fault(kind="hang", seconds=0.0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError):
            Fault.from_dict({"kind": "raise", "fuse": 3})

    def test_from_dict_requires_kind(self):
        with pytest.raises(FaultPlanError):
            Fault.from_dict({"attempts": 3})

    def test_plan_entries_must_be_faults(self):
        with pytest.raises(FaultPlanError):
            FaultPlan({"a/b/c": "raise"})

    def test_coerce_plan_accepts_plain_mappings_and_plans(self):
        plan = coerce_plan({"a/b/c": {"kind": "raise"}})
        assert isinstance(plan, FaultPlan)
        assert coerce_plan(plan) is plan
        assert coerce_plan(None) is None


class TestPlanRoundTrip:
    PLAN = FaultPlan.from_mapping(
        {
            "hillclimb/w/hdd": {"kind": "raise", "message": "boom"},
            "navathe/w/hdd": {"kind": "transient", "attempts": 2},
            "o2p/w/hdd": {"kind": "hang", "seconds": 1.5},
            "trojan/w/hdd": {"kind": "die"},
        }
    )

    def test_json_round_trip_is_lossless(self):
        assert FaultPlan.from_json(self.PLAN.to_json()) == self.PLAN

    def test_invalid_json_raises(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json("{not json")

    def test_install_and_active_plan(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert active_plan() is None
        install(self.PLAN)
        try:
            assert active_plan() == self.PLAN
            fault = active_fault("navathe/w/hdd")
            assert fault is not None and fault.kind == "transient"
            assert active_fault("unknown/cell/label") is None
        finally:
            install(None)
        assert active_plan() is None

    def test_injected_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, FaultPlan.from_mapping(
            {"x/y/z": {"kind": "raise"}}
        ).to_json())
        with injected(self.PLAN):
            assert active_fault("trojan/w/hdd") is not None
        assert active_fault("trojan/w/hdd") is None
        assert active_fault("x/y/z") is not None

    def test_installing_empty_plan_uninstalls(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, self.PLAN.to_json())
        install(FaultPlan({}))
        assert ENV_VAR not in os.environ


class TestTrigger:
    def test_raise_fault_always_raises(self):
        fault = Fault(kind="raise", message="broken cell")
        for attempt in (1, 2, 5):
            with pytest.raises(InjectedFaultError, match="broken cell"):
                trigger(fault, attempt)

    def test_transient_fails_then_passes(self):
        fault = Fault(kind="transient", attempts=2)
        with pytest.raises(TransientInjectedError):
            trigger(fault, 1)
        with pytest.raises(TransientInjectedError):
            trigger(fault, 2)
        trigger(fault, 3)  # past the failing window: no-op

    def test_hang_sleeps_then_returns(self):
        import time

        fault = Fault(kind="hang", seconds=0.05)
        start = time.monotonic()
        trigger(fault, 1)
        assert time.monotonic() - start >= 0.05

    def test_die_degrades_to_raise_in_process(self):
        # In-process, an os._exit would take the test runner down; the serial
        # path must degrade it to an ordinary quarantinable exception.
        fault = Fault(kind="die")
        with pytest.raises(InjectedFaultError, match="die fault degraded"):
            trigger(fault, 1, in_process=True)

    def test_die_exit_code_is_distinctive(self):
        assert DIE_EXIT_CODE != 0


class TestRetryPolicy:
    def test_max_attempts(self):
        assert RetryPolicy().max_attempts == 1
        assert RetryPolicy(retries=2).max_attempts == 3

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(retries=3, backoff_base=0.1)
        for attempt in (1, 2, 3):
            assert policy.delay("a/b/c", attempt) == policy.delay("a/b/c", attempt)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(retries=10, backoff_base=0.1, backoff_cap=0.4)
        # Jitter scales by [0.5, 1.0], so compare against the raw schedule.
        for attempt in range(1, 8):
            raw = min(0.4, 0.1 * 2 ** (attempt - 1))
            delay = policy.delay("cell", attempt)
            assert 0.5 * raw <= delay <= raw

    def test_jitter_decorrelates_cells(self):
        policy = RetryPolicy(retries=1, backoff_base=1.0, backoff_cap=10.0)
        delays = {policy.delay(f"cell-{i}/w/m", 1) for i in range(16)}
        # A batch of simultaneous failures must not retry in lockstep.
        assert len(delays) > 1

    def test_zero_base_means_no_delay(self):
        policy = RetryPolicy(retries=5, backoff_base=0.0)
        assert policy.delay("cell", 3) == 0.0
