"""Unit tests for the O2P online partitioning algorithm."""

import pytest

from repro.algorithms.navathe import NavatheAlgorithm
from repro.algorithms.o2p import O2PAlgorithm, O2PStepper
from repro.core.partitioning import Partitioning
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


class TestO2P:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            O2PAlgorithm(max_splits_per_step=0)

    def test_produces_valid_partitioning(self, lineitem_workload, hdd_model):
        layout = O2PAlgorithm().compute(lineitem_workload, hdd_model)
        Partitioning(layout.schema, layout.partitions)

    def test_at_most_one_split_per_query(self, lineitem_workload, hdd_model):
        algorithm = O2PAlgorithm(max_splits_per_step=1)
        layout = algorithm.compute(lineitem_workload, hdd_model)
        metadata = algorithm.last_run_metadata()
        assert metadata["splits"] <= metadata["steps"]
        assert layout.partition_count == metadata["splits"] + 1

    def test_splits_cleanly_separable_online_workload(self, hdd_model):
        schema = TableSchema(
            "t", [Column(n, 8) for n in ("a", "b", "c", "d")], row_count=100_000
        )
        workload = Workload(
            schema,
            [
                Query("Q1", ["a", "b"]),
                Query("Q2", ["c", "d"]),
                Query("Q3", ["a", "b"]),
                Query("Q4", ["c", "d"]),
            ],
        )
        layout = O2PAlgorithm().compute(workload, hdd_model)
        groups = set(layout.as_names())
        assert ("a", "b") in groups
        assert ("c", "d") in groups

    def test_online_quality_close_to_navathe(self, lineitem_workload, hdd_model):
        """O2P is the online counterpart of Navathe: same class of layouts
        (the paper measures 481 s vs 506 s — within ~15% of each other)."""
        o2p = O2PAlgorithm().run(lineitem_workload, hdd_model)
        navathe = NavatheAlgorithm().run(lineitem_workload, hdd_model)
        ratio = o2p.estimated_cost / navathe.estimated_cost
        assert 0.7 < ratio < 1.5

    def test_query_order_matters(self, hdd_model):
        """An online algorithm may commit to early splits that a different
        arrival order would avoid — but every order must yield a valid layout."""
        schema = TableSchema(
            "t", [Column(n, 8) for n in ("a", "b", "c", "d", "e")], row_count=50_000
        )
        queries = [
            Query("Q1", ["a", "b"]),
            Query("Q2", ["c", "d", "e"]),
            Query("Q3", ["b", "c"]),
        ]
        forward = O2PAlgorithm().compute(Workload(schema, queries), hdd_model)
        backward = O2PAlgorithm().compute(
            Workload(schema, list(reversed(queries))), hdd_model
        )
        for layout in (forward, backward):
            Partitioning(layout.schema, layout.partitions)

    def test_metadata_records_final_order_and_splits(self, customer_workload, hdd_model):
        algorithm = O2PAlgorithm()
        algorithm.run(customer_workload, hdd_model)
        metadata = algorithm.last_run_metadata()
        assert sorted(metadata["final_order"]) == list(
            range(customer_workload.attribute_count)
        )
        assert all(
            0 < point < customer_workload.attribute_count
            for point in metadata["split_points"]
        )


class TestO2PStepper:
    def test_stepper_matches_offline_replay(self, lineitem_workload, hdd_model):
        """Feeding the stepper query by query is the same computation the
        offline ``compute`` replay performs — identical layout and metadata."""
        algorithm = O2PAlgorithm()
        offline = algorithm.compute(lineitem_workload, hdd_model)
        stepper = O2PStepper(lineitem_workload.schema)
        split_flags = [stepper.step(query) for query in lineitem_workload]
        assert stepper.layout() == offline
        assert sum(split_flags) == algorithm.last_run_metadata()["splits"]

    def test_layout_available_mid_stream(self, lineitem_workload, hdd_model):
        stepper = O2PStepper(lineitem_workload.schema)
        for query in lineitem_workload:
            stepper.step(query)
            # Every intermediate layout is complete and disjoint, and the
            # bitmask view matches the materialised partitioning.
            layout = stepper.layout()
            Partitioning(layout.schema, layout.partitions)
            assert sorted(stepper.layout_masks()) == sorted(layout.as_masks())

    def test_rejects_bad_parameters(self, lineitem_workload):
        with pytest.raises(ValueError):
            O2PStepper(lineitem_workload.schema, max_splits_per_step=0)
