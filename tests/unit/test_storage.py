"""Unit tests for the storage simulator (pages, engine, data, compression)."""

import numpy as np
import pytest

from repro.core.partitioning import Partitioning, column_partitioning, row_partitioning
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.storage.compression import (
    DictionaryCompression,
    NoCompression,
    VaryingLengthCompression,
)
from repro.storage.data import generate_column_data, generate_table_data
from repro.storage.engine import SimulatedDisk, StorageEngine
from repro.storage.pages import PagedFile, PageLayoutError
from repro.workload.schema import Column


class TestPagedFile:
    def test_page_count(self):
        file = PagedFile("f", row_size=100, row_count=1000, page_size=1000)
        assert file.rows_per_page == 10
        assert file.page_count == 100
        assert file.size_in_bytes == 100 * 1000

    def test_rows_wider_than_page(self):
        file = PagedFile("f", row_size=3000, row_count=5, page_size=1000)
        assert file.rows_per_page == 1
        assert file.page_count == 5

    def test_empty_file(self):
        file = PagedFile("f", row_size=10, row_count=0, page_size=1000)
        assert file.page_count == 0

    def test_page_of_row_and_bounds(self):
        file = PagedFile("f", row_size=100, row_count=55, page_size=1000)
        assert file.page_of_row(0) == 0
        assert file.page_of_row(54) == 5
        with pytest.raises(PageLayoutError):
            file.page_of_row(55)

    def test_pages_iteration_covers_all_rows(self):
        file = PagedFile("f", row_size=100, row_count=55, page_size=1000)
        pages = list(file.pages())
        assert len(pages) == file.page_count
        assert sum(page.row_count for page in pages) == 55
        assert pages[-1].last_row == 54

    def test_pages_for_rows(self):
        file = PagedFile("f", row_size=100, row_count=100, page_size=1000)
        assert file.pages_for_rows([0, 5, 15, 95]) == [0, 1, 9]

    def test_invalid_parameters(self):
        with pytest.raises(PageLayoutError):
            PagedFile("f", row_size=0, row_count=10, page_size=100)
        with pytest.raises(PageLayoutError):
            PagedFile("f", row_size=10, row_count=-1, page_size=100)


class TestDataGeneration:
    def test_character_columns_use_fixed_width_bytes(self):
        column = Column.of_type("comment", "varchar", 20)
        values = generate_column_data(column, 100, random_state=0)
        assert values.dtype == np.dtype("S20")
        assert len(values) == 100

    def test_numeric_columns(self):
        assert generate_column_data(Column("k", 4, "int"), 50, random_state=0).dtype == np.int64
        assert generate_column_data(Column("p", 8, "decimal"), 50, random_state=0).dtype == np.float64

    def test_deterministic(self):
        column = Column("k", 4, "int")
        a = generate_column_data(column, 100, random_state=42)
        b = generate_column_data(column, 100, random_state=42)
        assert np.array_equal(a, b)

    def test_distinct_value_override(self):
        column = Column("flag", 1, "char(1)")
        values = generate_column_data(column, 1000, distinct_values=2, random_state=0)
        assert len(np.unique(values)) <= 2

    def test_generate_table_data(self, small_schema):
        data = generate_table_data(small_schema, row_count=200, random_state=0)
        assert set(data) == set(small_schema.attribute_names)
        assert all(len(values) == 200 for values in data.values())

    def test_negative_row_count_rejected(self):
        with pytest.raises(ValueError):
            generate_column_data(Column("k", 4, "int"), -1)


class TestCompressionSchemes:
    def test_no_compression_identity(self):
        column = Column.of_type("comment", "varchar", 44)
        assert NoCompression().effective_width(column) == 44.0

    def test_varying_length_shrinks_strings_and_numbers(self):
        scheme = VaryingLengthCompression()
        assert scheme.effective_width(Column.of_type("comment", "varchar", 100)) < 100
        assert scheme.effective_width(Column("key", 4, "int")) <= 4
        assert not scheme.is_fixed_width()

    def test_dictionary_width_from_distinct_count(self):
        scheme = DictionaryCompression()
        column = Column.of_type("flag", "char", 10)
        values = np.array([b"a", b"b", b"c"] * 10)
        assert scheme.effective_width(column, values) == 1.0
        assert scheme.is_fixed_width()

    def test_dictionary_default_without_statistics(self):
        scheme = DictionaryCompression()
        assert scheme.effective_width(Column.of_type("comment", "varchar", 100)) == 4.0


class TestStorageEngine:
    def test_scan_reads_only_referenced_partitions(self, intro_workload):
        layout = Partitioning(intro_workload.schema, [[0, 1], [2, 3], [4]])
        engine = StorageEngine(layout)
        q1 = intro_workload.query("Q1")  # does not touch the comment partition
        stats = engine.scan_query(q1)
        assert stats.partitions_read == 2
        comment_file = engine.file_for(layout.partition_of(4))
        assert stats.blocks_read < sum(f.page_count for f in engine.files)
        assert stats.blocks_read == sum(
            f.page_count for f in engine.files if f is not comment_file
        )

    def test_row_layout_reads_everything_for_every_query(self, intro_workload):
        engine = StorageEngine(row_partitioning(intro_workload.schema))
        q1 = intro_workload.query("Q1")
        q2 = intro_workload.query("Q2")
        assert engine.scan_query(q1).blocks_read == engine.scan_query(q2).blocks_read

    def test_smaller_buffer_means_more_seeks(self, intro_workload):
        layout = column_partitioning(intro_workload.schema)
        small = StorageEngine(
            layout, disk=SimulatedDisk(DiskCharacteristics(buffer_size=64 * KB))
        )
        large = StorageEngine(
            layout, disk=SimulatedDisk(DiskCharacteristics(buffer_size=64 * MB))
        )
        q1 = intro_workload.query("Q1")
        assert small.scan_query(q1).seeks > large.scan_query(q1).seeks

    def test_workload_scan_accumulates(self, intro_workload):
        engine = StorageEngine(column_partitioning(intro_workload.schema))
        total = engine.scan_workload(intro_workload)
        assert total.blocks_read > 0
        assert total.elapsed_seconds > 0

    def test_row_size_overrides_shrink_files(self, intro_workload):
        layout = row_partitioning(intro_workload.schema)
        plain = StorageEngine(layout)
        compressed = StorageEngine(layout, row_size_overrides={0: 20})
        assert compressed.total_size_in_bytes() < plain.total_size_in_bytes()

    def test_reconstruction_penalty_increases_elapsed_time(self, intro_workload):
        layout = column_partitioning(intro_workload.schema)
        cheap = StorageEngine(layout, reconstruction_penalty=1.0)
        expensive = StorageEngine(layout, reconstruction_penalty=10.0)
        q1 = intro_workload.query("Q1")
        assert expensive.scan_query(q1).elapsed_seconds > cheap.scan_query(q1).elapsed_seconds

    def test_file_for_unknown_partition_raises(self, intro_workload):
        from repro.core.partitioning import Partition

        engine = StorageEngine(row_partitioning(intro_workload.schema))
        with pytest.raises(KeyError):
            engine.file_for(Partition([0]))
