"""Unit tests for the shared experiment runner and report rendering."""

import pytest

from repro.experiments.report import format_percentage, format_table
from repro.experiments.runner import SuiteResult, baseline_costs, run_suite
from repro.workload import tpch


@pytest.fixture(scope="module")
def small_suite():
    workloads = {
        "partsupp": tpch.tpch_workload("partsupp", scale_factor=0.1),
        "nation": tpch.tpch_workload("nation", scale_factor=0.1),
    }
    return run_suite(workloads, algorithms=("hillclimb", "navathe", "brute-force"))


class TestRunSuite:
    def test_contains_requested_algorithms_and_baselines(self, small_suite):
        assert set(small_suite.runs) == {
            "hillclimb", "navathe", "brute-force", "row", "column",
        }
        assert small_suite.tables == ["partsupp", "nation"]

    def test_every_run_has_a_valid_layout(self, small_suite):
        for algorithm in small_suite.algorithms:
            for table in small_suite.tables:
                run = small_suite.run(algorithm, table)
                assert run.partitioning.schema.name == table
                assert run.estimated_cost > 0

    def test_totals_are_sums(self, small_suite):
        total = small_suite.total_cost("hillclimb")
        parts = sum(
            small_suite.run("hillclimb", table).estimated_cost
            for table in small_suite.tables
        )
        assert total == pytest.approx(parts)

    def test_brute_force_exact_on_small_tables(self, small_suite):
        assert not small_suite.is_approximate("brute-force")
        assert small_suite.total_cost("brute-force") <= small_suite.total_cost(
            "hillclimb"
        ) * 1.0001

    def test_brute_force_fallback_on_wide_tables(self):
        workloads = {"lineitem": tpch.tpch_workload("lineitem", scale_factor=0.1)}
        suite = run_suite(
            workloads,
            algorithms=("hillclimb", "brute-force"),
            brute_force_unit_limit=6,
        )
        assert suite.is_approximate("brute-force")
        run = suite.run("brute-force", "lineitem")
        assert run.result.metadata["approximated_by"] == "hillclimb"
        assert run.estimated_cost == pytest.approx(
            suite.run("hillclimb", "lineitem").estimated_cost
        )

    def test_layouts_accessor(self, small_suite):
        layouts = small_suite.layouts("hillclimb")
        assert set(layouts) == {"partsupp", "nation"}

    def test_baseline_costs_helper(self):
        workloads = {"partsupp": tpch.tpch_workload("partsupp", scale_factor=0.1)}
        costs = baseline_costs(workloads)
        assert costs["row"]["partsupp"] > costs["column"]["partsupp"] > 0


class TestRunSuiteCache:
    def test_suite_runs_are_served_from_the_grid_cache(self, tmp_path):
        from repro.grid.cache import ResultCache

        workloads = {"partsupp": tpch.tpch_workload("partsupp", scale_factor=0.1)}
        first_cache = ResultCache(tmp_path)
        first = run_suite(workloads, algorithms=("hillclimb",), cache=first_cache)
        # Heuristic plus the row/column baselines are stored.
        assert first_cache.stores == 3

        second_cache = ResultCache(tmp_path)
        second = run_suite(workloads, algorithms=("hillclimb",), cache=second_cache)
        assert second_cache.hits == 3 and second_cache.stores == 0
        for algorithm in ("hillclimb", "row", "column"):
            assert second.layout(algorithm, "partsupp") == first.layout(
                algorithm, "partsupp"
            )
            assert second.run(algorithm, "partsupp").estimated_cost == first.run(
                algorithm, "partsupp"
            ).estimated_cost

    def test_cache_distinguishes_cost_models(self, tmp_path):
        from repro.cost.mainmemory import MainMemoryCostModel
        from repro.grid.cache import ResultCache

        workloads = {"partsupp": tpch.tpch_workload("partsupp", scale_factor=0.1)}
        cache = ResultCache(tmp_path)
        run_suite(workloads, algorithms=("hillclimb",), cache=cache)
        run_suite(
            workloads,
            algorithms=("hillclimb",),
            cost_model=MainMemoryCostModel(),
            cache=cache,
        )
        # The second model's runs are misses, not false hits.
        assert cache.stores == 6 and cache.hits == 0


class TestReportRendering:
    def test_format_percentage(self):
        assert format_percentage(0.0371) == "+3.71%"
        assert format_percentage(-0.2147) == "-21.47%"

    def test_format_table_alignment(self):
        rows = [
            {"algorithm": "hillclimb", "cost": 1.2345, "ok": True},
            {"algorithm": "navathe", "cost": 10.5, "ok": False},
        ]
        text = format_table(rows, title="Figure X")
        lines = text.splitlines()
        assert lines[0] == "Figure X"
        assert "hillclimb" in text and "navathe" in text
        assert "yes" in text and "no" in text

    def test_format_table_empty(self):
        assert format_table([], title="empty") == "empty"

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]
