"""Unit tests for set-partition enumeration, Bell and Stirling numbers."""

import pytest

from repro.algorithms.support.enumeration import (
    bell_number,
    count_set_partitions,
    restricted_growth_strings,
    set_partitions,
    stirling_second,
)


class TestStirling:
    def test_known_values(self):
        assert stirling_second(0, 0) == 1
        assert stirling_second(3, 2) == 3
        assert stirling_second(4, 2) == 7
        assert stirling_second(5, 3) == 25
        assert stirling_second(4, 5) == 0

    def test_boundaries(self):
        assert stirling_second(6, 1) == 1
        assert stirling_second(6, 6) == 1
        assert stirling_second(3, 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            stirling_second(-1, 0)


class TestBellNumbers:
    def test_known_values(self):
        # B_0..B_10
        expected = [1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975]
        assert [bell_number(n) for n in range(11)] == expected

    def test_paper_quoted_values(self):
        # "for the TPC-H customer table, having eight attributes, the number of
        # possible vertical partitionings is given by B_8 = 4140"
        assert bell_number(8) == 4140
        # For the 16 attributes of the TPC-H Lineitem table the search space
        # explodes (the paper quotes "10.5 million"; the exact Bell number is
        # B_16 = 10,480,142,147).
        assert bell_number(16) == 10_480_142_147

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bell_number(-1)

    def test_alias(self):
        assert count_set_partitions(5) == bell_number(5)


class TestRestrictedGrowthStrings:
    def test_zero_length(self):
        assert list(restricted_growth_strings(0)) == [()]

    def test_counts_match_bell_numbers(self):
        for n in range(1, 8):
            assert sum(1 for _ in restricted_growth_strings(n)) == bell_number(n)

    def test_strings_are_valid_rgs(self):
        for rgs in restricted_growth_strings(5):
            assert rgs[0] == 0
            running_max = 0
            for value in rgs[1:]:
                assert value <= running_max + 1
                running_max = max(running_max, value)

    def test_no_duplicates(self):
        strings = list(restricted_growth_strings(6))
        assert len(strings) == len(set(strings))


class TestSetPartitions:
    def test_empty_input(self):
        assert list(set_partitions([])) == [[]]

    def test_counts_match_bell_numbers(self):
        assert sum(1 for _ in set_partitions(range(6))) == bell_number(6)

    def test_partitions_are_complete_and_disjoint(self):
        items = [10, 20, 30, 40]
        for blocks in set_partitions(items):
            flattened = [item for block in blocks for item in block]
            assert sorted(flattened) == sorted(items)
            assert len(flattened) == len(set(flattened))

    def test_all_partitions_distinct(self):
        seen = set()
        for blocks in set_partitions(range(5)):
            signature = frozenset(frozenset(block) for block in blocks)
            assert signature not in seen
            seen.add(signature)
