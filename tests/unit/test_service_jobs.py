"""Unit tests for the service job layer: normalisation, dedup, scheduling."""

import threading
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.service import faults as service_faults
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    Job,
    JobCancelled,
    JobRegistry,
    ServiceError,
    job_id_for,
    normalize_request,
)
from repro.service.journal import JobJournal


class TestNormalizeRequest:
    def test_compare_from_builtin_grid_resolves_axes(self):
        normalized = normalize_request("compare", {"grid": "tiny"})
        spec = normalized["spec"]
        assert spec["algorithms"] == ["hillclimb", "navathe"]
        assert spec["workloads"] == ["tpch:partsupp@0.1", "telemetry:small"]
        assert spec["cost_models"] == ["hdd"]
        assert normalized["run"]["workers"] == 1
        assert normalized["run"]["refresh"] is False

    def test_compare_grid_overrides_apply(self):
        normalized = normalize_request(
            "compare",
            {"grid": "tiny", "algorithms": ["hillclimb"], "workers": 4},
        )
        assert normalized["spec"]["algorithms"] == ["hillclimb"]
        assert normalized["run"]["workers"] == 4

    def test_compare_explicit_axes(self):
        normalized = normalize_request(
            "compare",
            {
                "algorithms": ["hillclimb"],
                "workloads": ["telemetry:small"],
                "cost_models": ["hdd", "mainmemory"],
                "retries": 2,
                "cell_timeout": 30,
            },
        )
        assert normalized["spec"]["cost_models"] == ["hdd", "mainmemory"]
        assert normalized["run"]["retries"] == 2
        assert normalized["run"]["cell_timeout"] == 30.0

    @pytest.mark.parametrize(
        "body",
        [
            [],  # not an object
            {},  # neither grid nor axes
            {"workloads": ["telemetry:small"]},  # incomplete axes
            {"grid": "no-such-grid"},
            {"grid": "tiny", "algorithms": ["nope"]},
            {"grid": "tiny", "workloads": ["nope:x"]},
            {"grid": "tiny", "cost_models": ["nope"]},
            {"grid": "tiny", "algorithms": "hillclimb"},  # not a list
            {"grid": "tiny", "workers": 0},
            {"grid": "tiny", "retries": -1},
            {"grid": "tiny", "cell_timeout": 0},
            {"grid": "tiny", "cell_timeout": "fast"},
            {"grid": "tiny", "measurement": [1, 2]},
            {"grid": "tiny", "backend": "warp-drive"},
        ],
    )
    def test_compare_rejects_bad_bodies_with_400(self, body):
        with pytest.raises(ServiceError) as excinfo:
            normalize_request("compare", body)
        assert excinfo.value.status == 400

    def test_recommend_defaults_and_validation(self):
        normalized = normalize_request(
            "recommend", {"workload": "telemetry:small"}
        )
        assert normalized["cost_model"] == "hdd"
        assert "hillclimb" in normalized["algorithms"]
        with pytest.raises(ServiceError):
            normalize_request("recommend", {"workload": "nope:x"})
        with pytest.raises(ServiceError):
            normalize_request(
                "recommend", {"workload": "telemetry:small", "algorithms": ["nope"]}
            )

    def test_validate_backend_rules(self):
        normalized = normalize_request(
            "validate", {"workload": "telemetry:small", "rows": 2000}
        )
        assert normalized["backend"] == "measured"
        assert normalized["rows"] == 2000
        # The main-memory model has no measured counterpart: reject at
        # submission, not as a failed job later.
        with pytest.raises(ServiceError) as excinfo:
            normalize_request(
                "validate",
                {"workload": "telemetry:small", "cost_model": "mainmemory"},
            )
        assert excinfo.value.status == 400
        # ... but it validates fine on the sqlite backend (ranking only).
        normalized = normalize_request(
            "validate",
            {
                "workload": "telemetry:small",
                "cost_model": "mainmemory",
                "backend": "sqlite",
            },
        )
        assert normalized["backend"] == "sqlite"
        with pytest.raises(ServiceError):
            normalize_request(
                "validate",
                {"workload": "telemetry:small", "page_size": 4096},
            )  # page_size is sqlite-only

    def test_unknown_kind_is_404(self):
        with pytest.raises(ServiceError) as excinfo:
            normalize_request("optimize", {})
        assert excinfo.value.status == 404

    def test_error_envelope_shape(self):
        error = ServiceError(400, "boom")
        assert error.to_envelope() == {
            "error": {"status": 400, "type": "BadRequest", "message": "boom"}
        }


class TestJobIdentity:
    def test_equivalent_submissions_share_one_id(self):
        via_grid = normalize_request(
            "compare",
            {"grid": "tiny", "algorithms": ["hillclimb"],
             "workloads": ["telemetry:small"], "cost_models": ["hdd"]},
        )
        explicit = normalize_request(
            "compare",
            {"algorithms": ["hillclimb"], "workloads": ["telemetry:small"],
             "cost_models": ["hdd"]},
        )
        assert job_id_for("compare", via_grid) == job_id_for("compare", explicit)

    def test_workers_do_not_change_identity(self):
        one = normalize_request("compare", {"grid": "tiny", "workers": 1})
        four = normalize_request("compare", {"grid": "tiny", "workers": 4})
        assert job_id_for("compare", one) == job_id_for("compare", four)

    def test_refresh_and_axes_do_change_identity(self):
        base = normalize_request("compare", {"grid": "tiny"})
        for variation in (
            {"grid": "tiny", "refresh": True},
            {"grid": "tiny", "algorithms": ["hillclimb"]},
            {"grid": "small"},
        ):
            other = normalize_request("compare", variation)
            assert job_id_for("compare", other) != job_id_for("compare", base)

    def test_kind_prefixes_the_id(self):
        normalized = normalize_request("recommend", {"workload": "telemetry:small"})
        assert job_id_for("recommend", normalized).startswith("recommend-")


class TestJobRegistry:
    def _registry(self, runner, workers=2):
        return JobRegistry(runner=runner, workers=workers)

    def test_submit_runs_and_completes(self):
        registry = self._registry(lambda job: {"ok": True, "kind": job.kind})
        try:
            job, deduped = registry.submit("compare", {"grid": "tiny"})
            assert not deduped
            finished = registry.wait_for(job.id, timeout=10)
            assert finished.state == "done"
            assert finished.result == {"ok": True, "kind": "compare"}
            assert finished.wall_seconds is not None
        finally:
            registry.shutdown()

    def test_duplicate_submission_dedups_onto_one_job(self):
        calls = []

        def runner(job):
            calls.append(job.id)
            return {"n": len(calls)}

        registry = self._registry(runner)
        try:
            before = obs_metrics.registry().snapshot()
            first, deduped_first = registry.submit("compare", {"grid": "tiny"})
            registry.wait_for(first.id, timeout=10)
            second, deduped_second = registry.submit(
                "compare", {"grid": "tiny", "workers": 8}
            )
            assert second is first
            assert not deduped_first and deduped_second
            assert first.submissions == 2
            assert calls == [first.id]  # one computation, two submissions
            delta = obs_metrics.registry().delta(before)
            assert delta["counters"].get("service.jobs.submitted") == 1
            assert delta["counters"].get("service.jobs.deduped") == 1
        finally:
            registry.shutdown()

    def test_failed_job_is_reset_and_retried_on_resubmission(self):
        attempts = []

        def runner(job):
            attempts.append(job.id)
            if len(attempts) == 1:
                raise RuntimeError("transient blowup")
            return {"attempt": len(attempts)}

        registry = self._registry(runner)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            failed = registry.wait_for(job.id, timeout=10)
            assert failed.state == "failed"
            assert failed.error == {
                "type": "RuntimeError",
                "message": "transient blowup",
            }
            retried, deduped = registry.submit("compare", {"grid": "tiny"})
            assert retried is job and not deduped
            done = registry.wait_for(job.id, timeout=10)
            assert done.state == "done"
            assert done.result == {"attempt": 2}
            assert done.error is None
            assert done.submissions == 2
        finally:
            registry.shutdown()

    def test_concurrent_identical_submissions_yield_one_computation(self):
        release = threading.Event()
        calls = []

        def runner(job):
            calls.append(job.id)
            release.wait(10)
            return {"done": True}

        registry = self._registry(runner)
        try:
            outcomes = []

            def submit():
                outcomes.append(registry.submit("compare", {"grid": "tiny"}))

            threads = [threading.Thread(target=submit) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            release.set()
            ids = {job.id for job, _ in outcomes}
            assert len(ids) == 1
            # Exactly one submission was the first; the rest deduped.
            assert sum(1 for _, deduped in outcomes if not deduped) == 1
            registry.wait_for(ids.pop(), timeout=10)
            assert calls and len(calls) == 1
        finally:
            registry.shutdown()

    def test_listing_and_counts(self):
        registry = self._registry(lambda job: {})
        try:
            first, _ = registry.submit("compare", {"grid": "tiny"})
            second, _ = registry.submit("recommend", {"workload": "telemetry:small"})
            registry.wait_for(first.id, timeout=10)
            registry.wait_for(second.id, timeout=10)
            page, total = registry.jobs(offset=0, limit=1)
            assert total == 2 and [job.id for job in page] == [first.id]
            page, _ = registry.jobs(offset=1, limit=10)
            assert [job.id for job in page] == [second.id]
            counts = registry.counts()
            assert counts["done"] == 2
            assert set(counts) == set(JOB_STATES)
        finally:
            registry.shutdown()

    def test_shutdown_drains_queued_jobs_then_rejects(self):
        started = threading.Event()

        def runner(job):
            started.set()
            time.sleep(0.05)
            return {"drained": True}

        registry = self._registry(runner, workers=1)
        jobs = [
            registry.submit("compare", {"grid": "tiny", "retries": n})[0]
            for n in range(4)
        ]
        started.wait(5)
        registry.shutdown(wait=True)
        # Every queued job finished before the workers exited.
        assert all(job.state == "done" for job in jobs)
        with pytest.raises(ServiceError) as excinfo:
            registry.submit("compare", {"grid": "tiny"})
        assert excinfo.value.status == 503

    def test_wait_for_unknown_and_timeout(self):
        block = threading.Event()
        registry = self._registry(lambda job: block.wait(10) and {} or {})
        try:
            with pytest.raises(KeyError):
                registry.wait_for("compare-i-do-not-exist", timeout=0.1)
            job, _ = registry.submit("compare", {"grid": "tiny"})
            with pytest.raises(TimeoutError):
                registry.wait_for(job.id, timeout=0.1)
            block.set()
            assert registry.wait_for(job.id, timeout=10).state == "done"
        finally:
            registry.shutdown()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            JobRegistry(runner=lambda job: {}, workers=0)

    def test_job_to_dict_shape(self):
        job = Job(id="compare-abc", kind="compare", request={"spec": {}})
        record = job.to_dict()
        assert record["id"] == "compare-abc"
        assert record["state"] == "queued"
        assert record["result"] is None
        listing = job.to_dict(include_result=False)
        assert "result" not in listing

    def test_job_kinds_are_the_public_api(self):
        assert JOB_KINDS == ("recommend", "compare", "validate")

    @pytest.mark.parametrize(
        ("offset", "limit"),
        [(-1, 10), (0, 0), (0, -5), (True, 10), (0, True), ("3", 10), (0, "9")],
    )
    def test_paging_rejects_invalid_values_with_400(self, offset, limit):
        registry = self._registry(lambda job: {})
        try:
            with pytest.raises(ServiceError) as excinfo:
                registry.jobs(offset=offset, limit=limit)
            assert excinfo.value.status == 400
        finally:
            registry.shutdown()


class TestRegistryRobustness:
    """Backpressure, timeouts, cancellation, the breaker, finalisation."""

    def test_generation_guard_discards_stale_finalisation(self):
        release = threading.Event()
        registry = JobRegistry(
            runner=lambda job: release.wait(10) and {"ok": True} or {"ok": True}
        )
        try:
            before = obs_metrics.registry().snapshot()
            job, _ = registry.submit("compare", {"grid": "tiny"})
            while job.state != "running":
                time.sleep(0.005)
            # Simulate the race: a stale worker (older generation) finalising
            # after the registry moved the job on.
            registry._finalize(job, job.generation - 1, "done", {"stale": 1}, None)
            assert job.state == "running"  # the stale outcome did not land
            assert job.result is None
            delta = obs_metrics.registry().delta(before)["counters"]
            assert delta.get("service.jobs.discarded") == 1
            release.set()
            assert registry.wait_for(job.id, timeout=10).result == {"ok": True}
        finally:
            release.set()
            registry.shutdown()

    def test_requeue_race_newer_run_wins(self):
        """A job requeued while an old run is still in flight: the old run's
        outcome must be discarded, the requeued run's outcome kept."""
        gate = threading.Event()
        runs = []

        def runner(job):
            runs.append(len(runs))
            if len(runs) == 1:
                gate.wait(10)  # the first (stale-to-be) run hangs here
                return {"run": 1}
            return {"run": 2}

        registry = JobRegistry(runner=runner, workers=2)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            while job.state != "running":
                time.sleep(0.005)
            # Take the job away exactly like the watchdog does, then requeue
            # it via the public resubmission path.
            with registry._changed:
                job.generation += 1
                job.state = "failed"
                job.error = {"type": "JobTimeout", "message": "forced"}
                job.finished_at = time.time()
            retried, deduped = registry.submit("compare", {"grid": "tiny"})
            assert retried is job and not deduped
            done = registry.wait_for(job.id, timeout=10)
            gate.set()  # release the stale run *after* the new one finished
            time.sleep(0.05)  # give the stale finalisation a chance to race
            assert done.state == "done"
            assert done.result == {"run": 2}
        finally:
            gate.set()
            registry.shutdown()

    def test_worker_survives_base_exception_and_respawns(self):
        registry = JobRegistry(runner=lambda job: {"ok": True}, workers=1)
        try:
            plan = {"job.start": {"kind": "die", "times": 1}}
            with service_faults.injected(plan):
                job, _ = registry.submit("compare", {"grid": "tiny"})
                failed = registry.wait_for(job.id, timeout=10)
                assert failed.state == "failed"
                assert failed.error["type"] == "WorkerThreadDeath"
                # The worker thread died, but the next submission respawns it
                # and the new job completes.
                second, _ = registry.submit("recommend",
                                            {"workload": "telemetry:small"})
                assert registry.wait_for(second.id, timeout=10).state == "done"
        finally:
            registry.shutdown()

    def test_backpressure_sheds_with_retry_after(self):
        release = threading.Event()
        registry = JobRegistry(
            runner=lambda job: release.wait(10) and {} or {},
            workers=1,
            max_queue_depth=1,
        )
        try:
            first, _ = registry.submit("compare", {"grid": "tiny"})
            while first.state != "running":
                time.sleep(0.005)
            registry.submit("compare", {"grid": "tiny", "retries": 1})  # queued
            before = obs_metrics.registry().snapshot()
            with pytest.raises(ServiceError) as excinfo:
                registry.submit("compare", {"grid": "tiny", "retries": 2})
            error = excinfo.value
            assert error.status == 429
            assert error.error_type == "TooManyRequests"
            assert error.retry_after >= 1
            assert error.to_envelope()["error"]["retry_after"] == error.retry_after
            delta = obs_metrics.registry().delta(before)["counters"]
            assert delta.get("service.shed") == 1
            assert registry.saturated
        finally:
            release.set()
            registry.shutdown()

    def test_job_timeout_force_fails_and_discards_late_result(self):
        def runner(job):
            time.sleep(0.4)
            return {"late": True}

        registry = JobRegistry(runner=runner, workers=1, job_timeout=0.1)
        try:
            before = obs_metrics.registry().snapshot()
            job, _ = registry.submit("compare", {"grid": "tiny"})
            failed = registry.wait_for(job.id, timeout=10)
            assert failed.state == "failed"
            assert failed.error["type"] == "JobTimeout"
            assert job.cancel_event.is_set()
            # Wait out the runner: its late result must not overwrite.
            time.sleep(0.5)
            assert job.state == "failed"
            assert job.result is None
            delta = obs_metrics.registry().delta(before)["counters"]
            assert delta.get("service.jobs.timeouts") == 1
            assert delta.get("service.jobs.discarded") == 1
        finally:
            registry.shutdown()

    def test_cancel_queued_job_immediately(self):
        release = threading.Event()
        ran = []

        def runner(job):
            ran.append(job.id)
            release.wait(10)
            return {}

        registry = JobRegistry(runner=runner, workers=1)
        try:
            first, _ = registry.submit("compare", {"grid": "tiny"})
            while first.state != "running":
                time.sleep(0.005)
            queued, _ = registry.submit("compare", {"grid": "tiny", "retries": 1})
            cancelled_job, accepted = registry.cancel(queued.id)
            assert accepted and cancelled_job.state == "cancelled"
            release.set()
            registry.wait_for(first.id, timeout=10)
            registry.shutdown(wait=True)
            assert queued.state == "cancelled"
            assert ran == [first.id]  # the cancelled job never ran
        finally:
            release.set()
            registry.shutdown()

    def test_cancel_running_job_cooperatively(self):
        def runner(job):
            # A cooperative executor: waits, then honours the cancel event.
            job.cancel_event.wait(10)
            raise JobCancelled(job.id)

        registry = JobRegistry(runner=runner, workers=1)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            while job.state != "running":
                time.sleep(0.005)
            _, accepted = registry.cancel(job.id)
            assert accepted
            assert job.cancel_requested
            finished = registry.wait_for(job.id, timeout=10)
            assert finished.state == "cancelled"
            assert finished.result is None and finished.error is None
        finally:
            registry.shutdown()

    def test_cancelled_job_result_is_never_served_even_if_run_completes(self):
        def runner(job):
            job.cancel_event.wait(10)
            return {"secret": "must not escape"}  # ignores the cancel

        registry = JobRegistry(runner=runner, workers=1)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            while job.state != "running":
                time.sleep(0.005)
            registry.cancel(job.id)
            finished = registry.wait_for(job.id, timeout=10)
            assert finished.state == "cancelled"
            assert finished.result is None
        finally:
            registry.shutdown()

    def test_cancelled_job_is_retryable_by_resubmission(self):
        first_run = threading.Event()

        def runner(job):
            if not first_run.is_set():
                first_run.set()
                job.cancel_event.wait(10)
                raise JobCancelled(job.id)
            return {"second": True}

        registry = JobRegistry(runner=runner, workers=1)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            first_run.wait(5)
            registry.cancel(job.id)
            assert registry.wait_for(job.id, timeout=10).state == "cancelled"
            retried, deduped = registry.submit("compare", {"grid": "tiny"})
            assert retried is job and not deduped
            done = registry.wait_for(job.id, timeout=10)
            assert done.state == "done" and done.result == {"second": True}
        finally:
            registry.shutdown()

    def test_cancel_unknown_and_finished(self):
        registry = JobRegistry(runner=lambda job: {"ok": True})
        try:
            with pytest.raises(ServiceError) as excinfo:
                registry.cancel("compare-missing")
            assert excinfo.value.status == 404
            job, _ = registry.submit("compare", {"grid": "tiny"})
            registry.wait_for(job.id, timeout=10)
            same, accepted = registry.cancel(job.id)
            assert same is job and not accepted
            assert job.state == "done"  # a finished job is not disturbed
        finally:
            registry.shutdown()

    def test_circuit_breaker_quarantines_until_forced(self):
        calls = []

        def runner(job):
            calls.append(1)
            if len(calls) <= 2:
                raise RuntimeError(f"boom {len(calls)}")
            return {"recovered": True}

        registry = JobRegistry(runner=runner, workers=1, breaker_threshold=2)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            assert registry.wait_for(job.id, timeout=10).state == "failed"
            registry.submit("compare", {"grid": "tiny"})
            assert registry.wait_for(job.id, timeout=10).state == "failed"
            assert job.consecutive_failures == 2
            # Tripped: plain resubmission is rejected ...
            with pytest.raises(ServiceError) as excinfo:
                registry.submit("compare", {"grid": "tiny"})
            assert excinfo.value.status == 409
            assert excinfo.value.error_type == "Quarantined"
            # ... but force punches through and resets the breaker.
            forced, deduped = registry.submit(
                "compare", {"grid": "tiny", "force": True}
            )
            assert forced is job and not deduped
            done = registry.wait_for(job.id, timeout=10)
            assert done.state == "done" and done.result == {"recovered": True}
            assert job.consecutive_failures == 0
        finally:
            registry.shutdown()

    def test_force_does_not_change_the_job_id(self):
        normalized = normalize_request("compare", {"grid": "tiny"})
        registry = JobRegistry(runner=lambda job: {})
        try:
            job, _ = registry.submit("compare", {"grid": "tiny", "force": True})
            assert job.id == job_id_for("compare", normalized)
        finally:
            registry.shutdown()

    def test_success_resets_consecutive_failures(self):
        outcomes = iter([RuntimeError("x"), {"ok": 1}])

        def runner(job):
            outcome = next(outcomes)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        registry = JobRegistry(runner=runner, workers=1)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            registry.wait_for(job.id, timeout=10)
            assert job.consecutive_failures == 1
            registry.submit("compare", {"grid": "tiny"})
            done = registry.wait_for(job.id, timeout=10)
            assert done.state == "done"
            assert job.consecutive_failures == 0
        finally:
            registry.shutdown()

    def test_constructor_validation(self):
        for kwargs in (
            {"max_queue_depth": 0},
            {"job_timeout": 0},
            {"job_timeout": -1},
            {"breaker_threshold": 0},
        ):
            with pytest.raises(ValueError):
                JobRegistry(runner=lambda job: {}, **kwargs)


class TestRegistryDurability:
    """Journal integration: transitions recorded, restarts recovered."""

    def _journal(self, tmp_path):
        return JobJournal(str(tmp_path / "journal.jsonl"))

    def test_restart_restores_terminal_jobs_with_results(self, tmp_path):
        journal = self._journal(tmp_path)
        registry = JobRegistry(runner=lambda job: {"answer": 42}, journal=journal)
        job, _ = registry.submit("compare", {"grid": "tiny"})
        registry.wait_for(job.id, timeout=10)
        registry.shutdown()

        revived = JobRegistry(
            runner=lambda job: {"answer": 42},
            journal=self._journal(tmp_path),
        )
        try:
            restored = revived.get(job.id)
            assert restored is not None
            assert restored.state == "done"
            assert restored.result == {"answer": 42}
            # Resubmission dedups onto the restored job: no recomputation.
            same, deduped = revived.submit("compare", {"grid": "tiny"})
            assert same is restored and deduped
        finally:
            revived.shutdown()

    def test_restart_reenqueues_interrupted_jobs(self, tmp_path):
        # Simulate a crash: journal says submitted+running, no terminal event
        # (the process never got to write one).
        journal = self._journal(tmp_path)
        journal.append(
            "submitted", "compare-crashed", kind="compare",
            request={"grid": "tiny"},
        )
        journal.append("running", "compare-crashed")
        journal.close()

        registry = JobRegistry(
            runner=lambda job: {"rerun": True}, journal=self._journal(tmp_path)
        )
        try:
            assert registry.recovered == 1
            done = registry.wait_for("compare-crashed", timeout=10)
            assert done.state == "done"
            assert done.result == {"rerun": True}
        finally:
            registry.shutdown()

    def test_restart_after_torn_tail_still_recovers(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.append(
            "submitted", "compare-x", kind="compare", request={"grid": "tiny"}
        )
        journal.close()
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "runn')  # torn mid-crash

        registry = JobRegistry(
            runner=lambda job: {"ok": True}, journal=self._journal(tmp_path)
        )
        try:
            assert registry.wait_for("compare-x", timeout=10).state == "done"
        finally:
            registry.shutdown()

    def test_journal_failures_degrade_but_jobs_still_run(self, tmp_path):
        journal = self._journal(tmp_path)
        plan = {"journal.append": {"kind": "oserror"}}
        with service_faults.injected(plan):
            with pytest.warns(RuntimeWarning, match="journal degraded"):
                registry = JobRegistry(
                    runner=lambda job: {"ok": True}, journal=journal
                )
                try:
                    job, _ = registry.submit("compare", {"grid": "tiny"})
                    done = registry.wait_for(job.id, timeout=10)
                    assert done.state == "done"
                    assert journal.append_failures > 0
                finally:
                    registry.shutdown()

    def test_recovery_compacts_the_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        registry = JobRegistry(runner=lambda job: {"n": 1}, journal=journal)
        job, _ = registry.submit("compare", {"grid": "tiny"})
        registry.wait_for(job.id, timeout=10)
        registry.shutdown()

        revived = JobRegistry(
            runner=lambda job: {"n": 1}, journal=self._journal(tmp_path)
        )
        revived.shutdown()
        # After recovery the journal is one snapshot per job, not the full
        # transition history.
        with open(journal.path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        assert '"event":"snapshot"' in lines[0]
