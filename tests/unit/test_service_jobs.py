"""Unit tests for the service job layer: normalisation, dedup, scheduling."""

import threading
import time

import pytest

from repro.obs import metrics as obs_metrics
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    Job,
    JobRegistry,
    ServiceError,
    job_id_for,
    normalize_request,
)


class TestNormalizeRequest:
    def test_compare_from_builtin_grid_resolves_axes(self):
        normalized = normalize_request("compare", {"grid": "tiny"})
        spec = normalized["spec"]
        assert spec["algorithms"] == ["hillclimb", "navathe"]
        assert spec["workloads"] == ["tpch:partsupp@0.1", "telemetry:small"]
        assert spec["cost_models"] == ["hdd"]
        assert normalized["run"]["workers"] == 1
        assert normalized["run"]["refresh"] is False

    def test_compare_grid_overrides_apply(self):
        normalized = normalize_request(
            "compare",
            {"grid": "tiny", "algorithms": ["hillclimb"], "workers": 4},
        )
        assert normalized["spec"]["algorithms"] == ["hillclimb"]
        assert normalized["run"]["workers"] == 4

    def test_compare_explicit_axes(self):
        normalized = normalize_request(
            "compare",
            {
                "algorithms": ["hillclimb"],
                "workloads": ["telemetry:small"],
                "cost_models": ["hdd", "mainmemory"],
                "retries": 2,
                "cell_timeout": 30,
            },
        )
        assert normalized["spec"]["cost_models"] == ["hdd", "mainmemory"]
        assert normalized["run"]["retries"] == 2
        assert normalized["run"]["cell_timeout"] == 30.0

    @pytest.mark.parametrize(
        "body",
        [
            [],  # not an object
            {},  # neither grid nor axes
            {"workloads": ["telemetry:small"]},  # incomplete axes
            {"grid": "no-such-grid"},
            {"grid": "tiny", "algorithms": ["nope"]},
            {"grid": "tiny", "workloads": ["nope:x"]},
            {"grid": "tiny", "cost_models": ["nope"]},
            {"grid": "tiny", "algorithms": "hillclimb"},  # not a list
            {"grid": "tiny", "workers": 0},
            {"grid": "tiny", "retries": -1},
            {"grid": "tiny", "cell_timeout": 0},
            {"grid": "tiny", "cell_timeout": "fast"},
            {"grid": "tiny", "measurement": [1, 2]},
            {"grid": "tiny", "backend": "warp-drive"},
        ],
    )
    def test_compare_rejects_bad_bodies_with_400(self, body):
        with pytest.raises(ServiceError) as excinfo:
            normalize_request("compare", body)
        assert excinfo.value.status == 400

    def test_recommend_defaults_and_validation(self):
        normalized = normalize_request(
            "recommend", {"workload": "telemetry:small"}
        )
        assert normalized["cost_model"] == "hdd"
        assert "hillclimb" in normalized["algorithms"]
        with pytest.raises(ServiceError):
            normalize_request("recommend", {"workload": "nope:x"})
        with pytest.raises(ServiceError):
            normalize_request(
                "recommend", {"workload": "telemetry:small", "algorithms": ["nope"]}
            )

    def test_validate_backend_rules(self):
        normalized = normalize_request(
            "validate", {"workload": "telemetry:small", "rows": 2000}
        )
        assert normalized["backend"] == "measured"
        assert normalized["rows"] == 2000
        # The main-memory model has no measured counterpart: reject at
        # submission, not as a failed job later.
        with pytest.raises(ServiceError) as excinfo:
            normalize_request(
                "validate",
                {"workload": "telemetry:small", "cost_model": "mainmemory"},
            )
        assert excinfo.value.status == 400
        # ... but it validates fine on the sqlite backend (ranking only).
        normalized = normalize_request(
            "validate",
            {
                "workload": "telemetry:small",
                "cost_model": "mainmemory",
                "backend": "sqlite",
            },
        )
        assert normalized["backend"] == "sqlite"
        with pytest.raises(ServiceError):
            normalize_request(
                "validate",
                {"workload": "telemetry:small", "page_size": 4096},
            )  # page_size is sqlite-only

    def test_unknown_kind_is_404(self):
        with pytest.raises(ServiceError) as excinfo:
            normalize_request("optimize", {})
        assert excinfo.value.status == 404

    def test_error_envelope_shape(self):
        error = ServiceError(400, "boom")
        assert error.to_envelope() == {
            "error": {"status": 400, "type": "BadRequest", "message": "boom"}
        }


class TestJobIdentity:
    def test_equivalent_submissions_share_one_id(self):
        via_grid = normalize_request(
            "compare",
            {"grid": "tiny", "algorithms": ["hillclimb"],
             "workloads": ["telemetry:small"], "cost_models": ["hdd"]},
        )
        explicit = normalize_request(
            "compare",
            {"algorithms": ["hillclimb"], "workloads": ["telemetry:small"],
             "cost_models": ["hdd"]},
        )
        assert job_id_for("compare", via_grid) == job_id_for("compare", explicit)

    def test_workers_do_not_change_identity(self):
        one = normalize_request("compare", {"grid": "tiny", "workers": 1})
        four = normalize_request("compare", {"grid": "tiny", "workers": 4})
        assert job_id_for("compare", one) == job_id_for("compare", four)

    def test_refresh_and_axes_do_change_identity(self):
        base = normalize_request("compare", {"grid": "tiny"})
        for variation in (
            {"grid": "tiny", "refresh": True},
            {"grid": "tiny", "algorithms": ["hillclimb"]},
            {"grid": "small"},
        ):
            other = normalize_request("compare", variation)
            assert job_id_for("compare", other) != job_id_for("compare", base)

    def test_kind_prefixes_the_id(self):
        normalized = normalize_request("recommend", {"workload": "telemetry:small"})
        assert job_id_for("recommend", normalized).startswith("recommend-")


class TestJobRegistry:
    def _registry(self, runner, workers=2):
        return JobRegistry(runner=runner, workers=workers)

    def test_submit_runs_and_completes(self):
        registry = self._registry(lambda job: {"ok": True, "kind": job.kind})
        try:
            job, deduped = registry.submit("compare", {"grid": "tiny"})
            assert not deduped
            finished = registry.wait_for(job.id, timeout=10)
            assert finished.state == "done"
            assert finished.result == {"ok": True, "kind": "compare"}
            assert finished.wall_seconds is not None
        finally:
            registry.shutdown()

    def test_duplicate_submission_dedups_onto_one_job(self):
        calls = []

        def runner(job):
            calls.append(job.id)
            return {"n": len(calls)}

        registry = self._registry(runner)
        try:
            before = obs_metrics.registry().snapshot()
            first, deduped_first = registry.submit("compare", {"grid": "tiny"})
            registry.wait_for(first.id, timeout=10)
            second, deduped_second = registry.submit(
                "compare", {"grid": "tiny", "workers": 8}
            )
            assert second is first
            assert not deduped_first and deduped_second
            assert first.submissions == 2
            assert calls == [first.id]  # one computation, two submissions
            delta = obs_metrics.registry().delta(before)
            assert delta["counters"].get("service.jobs.submitted") == 1
            assert delta["counters"].get("service.jobs.deduped") == 1
        finally:
            registry.shutdown()

    def test_failed_job_is_reset_and_retried_on_resubmission(self):
        attempts = []

        def runner(job):
            attempts.append(job.id)
            if len(attempts) == 1:
                raise RuntimeError("transient blowup")
            return {"attempt": len(attempts)}

        registry = self._registry(runner)
        try:
            job, _ = registry.submit("compare", {"grid": "tiny"})
            failed = registry.wait_for(job.id, timeout=10)
            assert failed.state == "failed"
            assert failed.error == {
                "type": "RuntimeError",
                "message": "transient blowup",
            }
            retried, deduped = registry.submit("compare", {"grid": "tiny"})
            assert retried is job and not deduped
            done = registry.wait_for(job.id, timeout=10)
            assert done.state == "done"
            assert done.result == {"attempt": 2}
            assert done.error is None
            assert done.submissions == 2
        finally:
            registry.shutdown()

    def test_concurrent_identical_submissions_yield_one_computation(self):
        release = threading.Event()
        calls = []

        def runner(job):
            calls.append(job.id)
            release.wait(10)
            return {"done": True}

        registry = self._registry(runner)
        try:
            outcomes = []

            def submit():
                outcomes.append(registry.submit("compare", {"grid": "tiny"}))

            threads = [threading.Thread(target=submit) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            release.set()
            ids = {job.id for job, _ in outcomes}
            assert len(ids) == 1
            # Exactly one submission was the first; the rest deduped.
            assert sum(1 for _, deduped in outcomes if not deduped) == 1
            registry.wait_for(ids.pop(), timeout=10)
            assert calls and len(calls) == 1
        finally:
            registry.shutdown()

    def test_listing_and_counts(self):
        registry = self._registry(lambda job: {})
        try:
            first, _ = registry.submit("compare", {"grid": "tiny"})
            second, _ = registry.submit("recommend", {"workload": "telemetry:small"})
            registry.wait_for(first.id, timeout=10)
            registry.wait_for(second.id, timeout=10)
            page, total = registry.jobs(offset=0, limit=1)
            assert total == 2 and [job.id for job in page] == [first.id]
            page, _ = registry.jobs(offset=1, limit=10)
            assert [job.id for job in page] == [second.id]
            counts = registry.counts()
            assert counts["done"] == 2
            assert set(counts) == set(JOB_STATES)
        finally:
            registry.shutdown()

    def test_shutdown_drains_queued_jobs_then_rejects(self):
        started = threading.Event()

        def runner(job):
            started.set()
            time.sleep(0.05)
            return {"drained": True}

        registry = self._registry(runner, workers=1)
        jobs = [
            registry.submit("compare", {"grid": "tiny", "retries": n})[0]
            for n in range(4)
        ]
        started.wait(5)
        registry.shutdown(wait=True)
        # Every queued job finished before the workers exited.
        assert all(job.state == "done" for job in jobs)
        with pytest.raises(ServiceError) as excinfo:
            registry.submit("compare", {"grid": "tiny"})
        assert excinfo.value.status == 503

    def test_wait_for_unknown_and_timeout(self):
        block = threading.Event()
        registry = self._registry(lambda job: block.wait(10) and {} or {})
        try:
            with pytest.raises(KeyError):
                registry.wait_for("compare-i-do-not-exist", timeout=0.1)
            job, _ = registry.submit("compare", {"grid": "tiny"})
            with pytest.raises(TimeoutError):
                registry.wait_for(job.id, timeout=0.1)
            block.set()
            assert registry.wait_for(job.id, timeout=10).state == "done"
        finally:
            registry.shutdown()

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            JobRegistry(runner=lambda job: {}, workers=0)

    def test_job_to_dict_shape(self):
        job = Job(id="compare-abc", kind="compare", request={"spec": {}})
        record = job.to_dict()
        assert record["id"] == "compare-abc"
        assert record["state"] == "queued"
        assert record["result"] is None
        listing = job.to_dict(include_result=False)
        assert "result" not in listing

    def test_job_kinds_are_the_public_api(self):
        assert JOB_KINDS == ("recommend", "compare", "validate")
