"""Unit tests for the bitmask cost-evaluation kernel."""

import pytest

from repro.core.partitioning import Partition, Partitioning, merge_group_pair
from repro.cost.base import CostModel
from repro.cost.evaluator import CostEvaluator
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def workload():
    schema = TableSchema(
        "t",
        [Column("a", 4), Column("b", 8), Column("c", 100), Column("d", 25)],
        100_000,
    )
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=2.0),
            Query("Q2", ["c"]),
            Query("Q3", ["a", "c", "d"], weight=0.5),
        ],
    )


class TestCostEvaluator:
    def test_matches_naive_workload_cost(self, workload):
        model = HDDCostModel()
        evaluator = CostEvaluator(workload, model)
        groups = [frozenset({0, 1}), frozenset({2}), frozenset({3})]
        naive = model.workload_cost(workload, Partitioning(workload.schema, groups))
        assert evaluator.evaluate(groups) == naive

    def test_accepts_masks_partitions_and_sets(self, workload):
        evaluator = CostEvaluator(workload, HDDCostModel())
        uniform = [frozenset({0, 1}), frozenset({2}), frozenset({3})]
        mixed = [0b0011, Partition([2]), frozenset({3})]
        assert evaluator.evaluate(mixed) == evaluator.evaluate(uniform)

    def test_evaluate_merge_matches_from_scratch(self, workload):
        evaluator = CostEvaluator(workload, MainMemoryCostModel())
        groups = [frozenset({0}), frozenset({1}), frozenset({2}), frozenset({3})]
        merged = merge_group_pair(groups, 1, 3)
        assert evaluator.evaluate_merge(groups, 1, 3) == evaluator.evaluate(merged)

    def test_evaluate_merge_with_duplicate_groups(self, workload):
        """Regression: the delta path must drop exactly one occurrence of each
        merged group, not every equal bitmask, when duplicates are present."""
        model = HDDCostModel()
        evaluator = CostEvaluator(workload, model)
        groups = [frozenset({0}), frozenset({0}), frozenset({1})]
        delta = evaluator.evaluate_merge(groups, 0, 2)
        from_scratch = evaluator.evaluate([frozenset({0}), frozenset({0, 1})])
        assert delta == from_scratch

    def test_evaluate_merge_of_equal_groups(self, workload):
        evaluator = CostEvaluator(workload, HDDCostModel())
        groups = [frozenset({0}), frozenset({0}), frozenset({1})]
        assert evaluator.evaluate_merge(groups, 0, 1) == evaluator.evaluate(
            [frozenset({0}), frozenset({1})]
        )

    def test_unsupported_model_falls_back_to_naive(self, workload):
        class FlatModel(CostModel):
            name = "flat"

            def query_cost(self, query, partitioning):
                return float(len(partitioning.referenced_partitions(query)))

            def partition_read_cost(self, partition, co_read, partitioning):
                return 1.0

        model = FlatModel()
        evaluator = CostEvaluator(workload, model)
        assert evaluator.naive
        groups = [frozenset({0, 1}), frozenset({2, 3})]
        expected = model.workload_cost(workload, Partitioning(workload.schema, groups))
        assert evaluator.evaluate(groups) == expected

    def test_kernel_counts_candidate_evaluations(self, workload):
        evaluator = CostEvaluator(workload, HDDCostModel())
        groups = [frozenset({0, 1}), frozenset({2}), frozenset({3})]
        evaluator.evaluate(groups)
        evaluator.evaluate_merge(groups, 0, 1)
        assert evaluator.evaluations == 2


class TestSingleQueryCosting:
    def test_query_cost_matches_model(self, workload):
        model = HDDCostModel()
        evaluator = CostEvaluator(workload, model)
        groups = [frozenset({0, 1}), frozenset({2}), frozenset({3})]
        partitioning = Partitioning(workload.schema, groups)
        for query in workload:
            assert evaluator.query_cost(query.index_mask, groups) == model.query_cost(
                query, partitioning
            )

    def test_query_cost_naive_path_matches(self, workload):
        model = HDDCostModel()
        fast = CostEvaluator(workload, model)
        naive = CostEvaluator(workload, model, naive=True)
        groups = [frozenset({0}), frozenset({1, 2, 3})]
        for query in workload:
            assert naive.query_cost(query.index_mask, groups) == fast.query_cost(
                query.index_mask, groups
            )

    def test_workload_cost_is_weighted_query_cost_sum(self, workload):
        model = HDDCostModel()
        evaluator = CostEvaluator(workload, model)
        groups = [frozenset({0, 1, 2}), frozenset({3})]
        total = sum(
            query.weight * evaluator.query_cost(query.index_mask, groups)
            for query in workload
        )
        assert evaluator.evaluate(groups) == pytest.approx(total)


class TestRebind:
    def test_rebind_shares_caches_and_matches(self, workload):
        model = HDDCostModel()
        evaluator = CostEvaluator(workload, model)
        groups = [frozenset({0, 1}), frozenset({2}), frozenset({3})]
        evaluator.evaluate(groups)
        window = Workload(
            workload.schema,
            [Query("W1", ["a", "b"], weight=3.0), Query("W2", ["d"])],
            name="window",
        )
        rebound = evaluator.rebind(window)
        assert rebound._signature_costs is evaluator._signature_costs
        assert rebound._group_profiles is evaluator._group_profiles
        expected = model.workload_cost(window, Partitioning(workload.schema, groups))
        assert rebound.evaluate(groups) == expected

    def test_rebind_rejects_different_schema(self, workload):
        other = TableSchema("other", [Column("x", 4), Column("y", 8)], 10)
        evaluator = CostEvaluator(workload, HDDCostModel())
        with pytest.raises(ValueError):
            evaluator.rebind(Workload(other, [Query("Q", ["x"])]))
