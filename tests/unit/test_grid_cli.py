"""Direct tests for the ``python -m repro.grid`` CLI.

The runner tests exercise the CLI incidentally; this file covers it as a
surface of its own: argument parsing (defaults, axis overrides, the measured
backend's flags and their validation), the cache-dir resume path, and the
``--backend measured`` end-to-end flow including its agreement tables.
"""

import pytest

from repro.grid.cli import DEFAULT_CACHE_DIR, build_parser, main as grid_main
from repro.grid.cli import _spec_from_args
from repro.grid.spec import GridError, register_workload
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


def _cli_workload() -> Workload:
    schema = TableSchema(
        "cli_table",
        [Column("a", 4), Column("b", 8), Column("c", 40), Column("d", 16)],
        150_000,
    )
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=2.0),
            Query("Q2", ["c"]),
            Query("Q3", ["b", "c", "d"], weight=0.5),
        ],
        name="cli-workload",
    )


try:
    register_workload("cli:unit", _cli_workload)
except GridError:
    pass  # already registered by an earlier collection of this module


class TestArgumentParsing:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.grid == "small"
        assert args.backend == "estimated"
        assert args.workers == 1
        assert args.cache_dir == DEFAULT_CACHE_DIR
        assert args.measured_rows is None and args.data_seed is None
        assert not args.no_cache and not args.refresh and not args.quiet

    def test_axis_overrides_build_a_custom_spec(self):
        args = build_parser().parse_args(
            ["--grid", "tiny", "--algorithms", "hillclimb , navathe",
             "--workloads", "cli:unit", "--cost-models", "hdd"]
        )
        spec = _spec_from_args(args)
        assert spec.name == "tiny+custom"
        assert spec.algorithms == ("hillclimb", "navathe")
        assert spec.workloads == ("cli:unit",)
        assert spec.cost_models == ("hdd",)
        assert spec.backend == "estimated"

    def test_no_overrides_returns_the_builtin_spec(self):
        args = build_parser().parse_args(["--grid", "tiny"])
        spec = _spec_from_args(args)
        assert spec.name == "tiny"

    def test_measured_backend_flags_reach_the_spec(self):
        args = build_parser().parse_args(
            ["--grid", "tiny", "--backend", "measured",
             "--measured-rows", "3000", "--data-seed", "7"]
        )
        spec = _spec_from_args(args)
        assert spec.name == "tiny+measured"
        assert spec.backend == "measured"
        assert dict(spec.measurement) == {"rows": 3000, "data_seed": 7}
        assert all(cell.backend == "measured" for cell in spec.cells())

    def test_measured_flags_without_measured_backend_are_rejected(self):
        args = build_parser().parse_args(["--measured-rows", "3000"])
        with pytest.raises(GridError):
            _spec_from_args(args)

    def test_unknown_backend_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--backend", "guessed"])


class TestCacheResume:
    ARGS = [
        "--grid", "tiny",
        "--algorithms", "hillclimb",
        "--workloads", "cli:unit",
        "--cost-models", "hdd",
    ]

    def test_second_invocation_resumes_from_cache(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        first = capsys.readouterr().out
        assert "1 computed" in first
        assert grid_main(args) == 0
        second = capsys.readouterr().out
        assert "100.0% cache hits" in second
        # The tables (everything before the telemetry block, whose timings
        # naturally differ run to run) are reproduced from the cache.
        assert (
            first.split("Layout quality")[1].split("\ntelemetry:")[0]
            == second.split("Layout quality")[1].split("\ntelemetry:")[0]
        )

    def test_refresh_bypasses_the_cache(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        capsys.readouterr()
        assert grid_main(args + ["--refresh"]) == 0
        assert "1 computed" in capsys.readouterr().out

    def test_progress_lines_name_the_served_cells(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        assert "computed hillclimb/cli:unit/hdd" in capsys.readouterr().out
        assert grid_main(args) == 0
        assert "cached   hillclimb/cli:unit/hdd" in capsys.readouterr().out


class TestMeasuredBackendFlow:
    ARGS = [
        "--grid", "tiny",
        "--algorithms", "hillclimb,navathe",
        "--workloads", "cli:unit",
        "--cost-models", "hdd",
        "--backend", "measured",
        "--measured-rows", "2000",
    ]

    def test_measured_run_prints_agreement_tables(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        out = capsys.readouterr().out
        assert "(measured backend)" in out
        assert "Estimated vs measured agreement" in out
        assert "Agreement by algorithm" in out

    def test_measured_cells_resume_and_reproduce_tables(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        first = capsys.readouterr().out
        assert grid_main(args) == 0
        second = capsys.readouterr().out
        assert "100.0% cache hits" in second
        marker = "Estimated vs measured agreement"
        assert (
            first.split(marker)[1].split("\ntelemetry:")[0]
            == second.split(marker)[1].split("\ntelemetry:")[0]
        )

    def test_changed_data_seed_recomputes(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(self.ARGS + cache) == 0
        capsys.readouterr()
        assert grid_main(self.ARGS + cache + ["--data-seed", "9"]) == 0
        assert "2 computed" in capsys.readouterr().out


class TestQuietMode:
    """``--quiet`` prints the headline tables and nothing else on stdout."""

    ARGS = [
        "--grid", "tiny",
        "--algorithms", "hillclimb",
        "--workloads", "cli:unit",
        "--cost-models", "hdd",
        "--quiet",
    ]

    def test_quiet_prints_only_the_headline_tables(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        captured = capsys.readouterr()
        assert "Layout quality" in captured.out
        # No spec shape, no progress lines, no accounting, no telemetry.
        assert "cells" not in captured.out
        assert "computed hillclimb" not in captured.out
        assert "telemetry:" not in captured.out
        assert captured.err == ""

    def test_quiet_suppresses_cache_accounting_on_resume(self, tmp_path, capsys):
        args = self.ARGS + ["--cache-dir", str(tmp_path / "cache")]
        assert grid_main(args) == 0
        capsys.readouterr()
        assert grid_main(args) == 0
        out = capsys.readouterr().out
        assert "Layout quality" in out
        assert "cache hits" not in out
