"""Unit tests for disk characteristics and the creation-time model."""

import pytest

from repro.core.partitioning import column_partitioning, row_partitioning
from repro.cost.creation import estimate_creation_time
from repro.cost.disk import (
    DEFAULT_DISK,
    DiskCharacteristics,
    DiskParameterError,
    KB,
    MB,
)
from repro.workload import tpch


class TestDiskCharacteristics:
    def test_paper_defaults(self):
        assert DEFAULT_DISK.block_size == 8 * KB
        assert DEFAULT_DISK.buffer_size == 8 * MB
        assert DEFAULT_DISK.read_bandwidth == pytest.approx(90.07 * MB)
        assert DEFAULT_DISK.write_bandwidth == pytest.approx(64.37 * MB)
        assert DEFAULT_DISK.seek_time == pytest.approx(4.84e-3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DiskParameterError):
            DiskCharacteristics(block_size=0)
        with pytest.raises(DiskParameterError):
            DiskCharacteristics(buffer_size=-1)
        with pytest.raises(DiskParameterError):
            DiskCharacteristics(read_bandwidth=0)
        with pytest.raises(DiskParameterError):
            DiskCharacteristics(seek_time=-1)

    def test_with_methods_return_modified_copies(self):
        disk = DEFAULT_DISK
        assert disk.with_buffer_size(MB).buffer_size == MB
        assert disk.with_block_size(4 * KB).block_size == 4 * KB
        assert disk.with_read_bandwidth(50 * MB).read_bandwidth == 50 * MB
        assert disk.with_seek_time(1e-3).seek_time == 1e-3
        # The original is unchanged (frozen dataclass).
        assert disk.buffer_size == 8 * MB

    def test_describe_is_compact(self):
        text = DEFAULT_DISK.describe()
        assert "8MB" in text and "8KB" in text


class TestCreationTime:
    def test_creation_time_positive_and_scales_with_data(self):
        small = tpch.table_schema("partsupp", scale_factor=0.1)
        large = tpch.table_schema("partsupp", scale_factor=1.0)
        t_small = estimate_creation_time(row_partitioning(small))
        t_large = estimate_creation_time(row_partitioning(large))
        assert 0 < t_small < t_large

    def test_more_partitions_cost_more_seeks(self):
        schema = tpch.table_schema("partsupp", scale_factor=0.1)
        row_time = estimate_creation_time(row_partitioning(schema))
        column_time = estimate_creation_time(column_partitioning(schema))
        assert column_time > row_time

    def test_include_read_flag(self):
        schema = tpch.table_schema("partsupp", scale_factor=0.1)
        layout = row_partitioning(schema)
        with_read = estimate_creation_time(layout, include_read=True)
        without_read = estimate_creation_time(layout, include_read=False)
        assert with_read > without_read

    def test_sf10_creation_time_is_hundreds_of_seconds(self):
        """The paper reports ~420 s to transform TPC-H SF 10; our model should
        land in the same order of magnitude (the whole database)."""
        total = 0.0
        for table in tpch.table_names():
            schema = tpch.table_schema(table, scale_factor=10)
            total += estimate_creation_time(row_partitioning(schema))
        assert 100 < total < 2000
