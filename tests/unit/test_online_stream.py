"""Unit tests for the query stream sources (repro.online.stream)."""

import pytest

from repro.online.stream import (
    QueryStream,
    StreamError,
    phase_shift_stream,
    replay_stream,
    rotating_hot_set_stream,
    zipf_template_stream,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.synthetic import synthetic_table


@pytest.fixture
def schema():
    return synthetic_table(10, row_count=10_000, random_state=0)


def footprints(stream):
    return [query.attribute_indices for query in stream]


class TestQueryStream:
    def test_rejects_out_of_range_boundaries(self, schema):
        queries = [Query(f"Q{i}", [schema.attribute_names[0]]) for i in range(4)]
        with pytest.raises(StreamError):
            QueryStream(schema, queries, phase_boundaries=[0])
        with pytest.raises(StreamError):
            QueryStream(schema, queries, phase_boundaries=[4])

    def test_phase_of_follows_boundaries(self, schema):
        queries = [Query(f"Q{i}", [schema.attribute_names[0]]) for i in range(6)]
        stream = QueryStream(schema, queries, phase_boundaries=[2, 4])
        assert [stream.phase_of(i) for i in range(6)] == [0, 0, 1, 1, 2, 2]
        assert stream.phase_count == 3

    def test_as_workload_preserves_order(self, schema):
        queries = [Query(f"Q{i}", [schema.attribute_names[i % 3]]) for i in range(5)]
        stream = QueryStream(schema, queries, name="s")
        workload = stream.as_workload()
        assert [q.name for q in workload] == [f"Q{i}" for i in range(5)]

    def test_prefix_workload_bounds(self, schema):
        queries = [Query(f"Q{i}", [schema.attribute_names[0]]) for i in range(3)]
        stream = QueryStream(schema, queries)
        assert stream.prefix_workload(2).query_count == 2
        with pytest.raises(StreamError):
            stream.prefix_workload(0)
        with pytest.raises(StreamError):
            stream.prefix_workload(4)


class TestReplayStream:
    def test_replays_workload_in_order(self, lineitem_workload):
        stream = replay_stream(lineitem_workload)
        assert [q.name for q in stream] == [q.name for q in lineitem_workload]
        assert stream.phase_count == 1


class TestPhaseShiftStream:
    def make(self, schema, seed=0, noise=0.0):
        names = schema.attribute_names
        phases = [
            [Query("A1", names[:3]), Query("A2", names[3:6])],
            [Query("B1", names[2:5]), Query("B2", names[5:8])],
        ]
        return phase_shift_stream(
            schema, phases, queries_per_phase=20, noise=noise, random_state=seed
        )

    def test_seed_determinism(self, schema):
        assert footprints(self.make(schema, seed=5)) == footprints(
            self.make(schema, seed=5)
        )
        assert footprints(self.make(schema, seed=5)) != footprints(
            self.make(schema, seed=6)
        )

    def test_phase_boundaries_and_membership(self, schema):
        stream = self.make(schema)
        assert stream.phase_boundaries == (20,)
        names = schema.attribute_names
        allowed = [
            {frozenset(names[:3]), frozenset(names[3:6])},
            {frozenset(names[2:5]), frozenset(names[5:8])},
        ]
        for arrival, query in enumerate(stream):
            attrs = frozenset(names[i] for i in query.attribute_indices)
            assert attrs in allowed[stream.phase_of(arrival)]

    def test_noise_injects_one_off_footprints(self, schema):
        noisy = self.make(schema, seed=1, noise=0.5)
        noise_queries = [q for q in noisy if q.name.startswith("noise@")]
        assert noise_queries  # with p=0.5 over 40 arrivals this is certain-ish
        # noise is deterministic under the seed too
        again = self.make(schema, seed=1, noise=0.5)
        assert footprints(noisy) == footprints(again)

    def test_rejects_bad_parameters(self, schema):
        with pytest.raises(StreamError):
            phase_shift_stream(schema, [], queries_per_phase=5)
        with pytest.raises(StreamError):
            phase_shift_stream(
                schema, [[Query("Q", [schema.attribute_names[0]])]], queries_per_phase=0
            )
        with pytest.raises(StreamError):
            self.make(schema, noise=1.5)


class TestRotatingHotSetStream:
    def test_seed_determinism(self, schema):
        streams = [
            rotating_hot_set_stream(
                schema, num_phases=3, queries_per_phase=15, random_state=9
            )
            for _ in range(2)
        ]
        assert footprints(streams[0]) == footprints(streams[1])

    def test_queries_mostly_within_hot_set(self, schema):
        stream = rotating_hot_set_stream(
            schema,
            num_phases=2,
            queries_per_phase=50,
            hot_size=4,
            hot_probability=1.0,
            max_attributes=3,
            random_state=3,
        )
        # With hot_probability=1 every referenced attribute is hot, and the
        # two phases use different (rotated) hot sets.
        per_phase = [set(), set()]
        for arrival, query in enumerate(stream):
            per_phase[stream.phase_of(arrival)].update(query.attribute_indices)
        assert len(per_phase[0]) <= 4 and len(per_phase[1]) <= 4
        assert per_phase[0] != per_phase[1]

    def test_footprint_capped_by_drawable_attributes(self, schema):
        """Regression: hot_probability=1.0 leaves only the hot set drawable;
        a requested footprint larger than that is capped, not a crash."""
        stream = rotating_hot_set_stream(
            schema,
            num_phases=2,
            queries_per_phase=20,
            hot_size=3,
            max_attributes=6,
            hot_probability=1.0,
            random_state=0,
        )
        assert all(len(query.attribute_indices) <= 3 for query in stream)

    def test_boundaries_match_phase_length(self, schema):
        stream = rotating_hot_set_stream(
            schema, num_phases=4, queries_per_phase=10, random_state=0
        )
        assert stream.phase_boundaries == (10, 20, 30)
        assert len(stream) == 40


class TestZipfTemplateStream:
    def test_seed_determinism_and_length(self, schema):
        a = zipf_template_stream(schema, num_templates=5, length=60, random_state=2)
        b = zipf_template_stream(schema, num_templates=5, length=60, random_state=2)
        assert footprints(a) == footprints(b)
        assert len(a) == 60

    def test_skew_concentrates_mass(self, schema):
        stream = zipf_template_stream(
            schema, num_templates=6, length=300, skew=2.0, random_state=4
        )
        counts = {}
        for query in stream:
            template = query.name.split("@")[0]
            counts[template] = counts.get(template, 0) + 1
        # The most frequent template dominates under strong skew.
        assert max(counts.values()) > 300 // 3

    def test_rotation_creates_boundaries(self, schema):
        stream = zipf_template_stream(
            schema, num_templates=4, length=90, rotate_every=30, random_state=0
        )
        assert stream.phase_boundaries == (30, 60)
