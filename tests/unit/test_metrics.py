"""Unit tests for the comparison metrics."""

import math

import pytest

from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.metrics.fragility import fragility, normalized_cost
from repro.metrics.payoff import payoff_fraction
from repro.metrics.quality import (
    average_reconstruction_joins,
    bytes_needed,
    bytes_read,
    distance_from_pmv,
    improvement_over,
    unnecessary_data_fraction,
)
from repro.cost.hdd import HDDCostModel
from repro.cost.disk import DEFAULT_DISK, MB


class TestQualityMetrics:
    def test_row_layout_reads_lots_of_unnecessary_data(self, intro_workload):
        row = row_partitioning(intro_workload.schema)
        fraction = unnecessary_data_fraction(intro_workload, row)
        # The Comment column dominates the row size but Q1 never needs it.
        assert fraction > 0.3

    def test_column_layout_reads_no_unnecessary_data(self, intro_workload):
        column = column_partitioning(intro_workload.schema)
        assert unnecessary_data_fraction(intro_workload, column) == pytest.approx(0.0)

    def test_bytes_read_at_least_bytes_needed(self, intro_workload):
        for layout in (
            row_partitioning(intro_workload.schema),
            column_partitioning(intro_workload.schema),
            Partitioning(intro_workload.schema, [[0, 1], [2, 3], [4]]),
        ):
            assert bytes_read(intro_workload, layout) >= bytes_needed(
                intro_workload, layout
            )

    def test_reconstruction_joins_row_layout_is_zero(self, intro_workload):
        row = row_partitioning(intro_workload.schema)
        assert average_reconstruction_joins(intro_workload, row) == 0.0

    def test_reconstruction_joins_column_layout(self, intro_workload):
        column = column_partitioning(intro_workload.schema)
        # Q1 touches 4 columns (3 joins), Q2 touches 3 columns (2 joins).
        assert average_reconstruction_joins(intro_workload, column) == pytest.approx(2.5)

    def test_reconstruction_joins_weighted(self, intro_workload):
        column = column_partitioning(intro_workload.schema)
        reweighted = intro_workload.subset(["Q1", "Q2"])
        assert average_reconstruction_joins(reweighted, column) == pytest.approx(2.5)

    def test_improvement_over(self):
        assert improvement_over(100.0, 80.0) == pytest.approx(0.2)
        assert improvement_over(100.0, 120.0) == pytest.approx(-0.2)
        assert improvement_over(0.0, 10.0) == 0.0

    def test_distance_from_pmv_non_negative_for_legal_layouts(self, intro_workload):
        model = HDDCostModel()
        for layout in (
            row_partitioning(intro_workload.schema),
            column_partitioning(intro_workload.schema),
        ):
            assert distance_from_pmv(intro_workload, layout, model) >= 0.0

    def test_distance_from_pmv_accepts_precomputed_reference(self, intro_workload):
        model = HDDCostModel()
        column = column_partitioning(intro_workload.schema)
        direct = distance_from_pmv(intro_workload, column, model)
        cached = distance_from_pmv(intro_workload, column, model, pmv_cost=None)
        assert direct == pytest.approx(cached)


class TestFragilityMetrics:
    def test_zero_when_setting_unchanged(self, intro_workload):
        model = HDDCostModel()
        layout = column_partitioning(intro_workload.schema)
        assert fragility(intro_workload, layout, model, model) == pytest.approx(0.0)

    def test_smaller_buffer_increases_cost(self, intro_workload):
        old = HDDCostModel(DEFAULT_DISK)
        new = HDDCostModel(DEFAULT_DISK.with_buffer_size(64 * 1024))
        layout = column_partitioning(intro_workload.schema)
        assert fragility(intro_workload, layout, old, new) > 0.0

    def test_larger_buffer_never_hurts(self, intro_workload):
        old = HDDCostModel(DEFAULT_DISK)
        new = HDDCostModel(DEFAULT_DISK.with_buffer_size(800 * MB))
        layout = column_partitioning(intro_workload.schema)
        assert fragility(intro_workload, layout, old, new) <= 0.0

    def test_normalized_cost_of_column_layout_is_one(self, intro_workload):
        model = HDDCostModel()
        column = column_partitioning(intro_workload.schema)
        assert normalized_cost(intro_workload, column, model) == pytest.approx(1.0)

    def test_normalized_cost_of_row_layout_above_one(self, intro_workload):
        model = HDDCostModel()
        row = row_partitioning(intro_workload.schema)
        assert normalized_cost(intro_workload, row, model) > 1.0


class TestPayoffMetric:
    def test_fraction_of_workload(self):
        # Investing 10 s to save 40 s per workload run pays off after 25%.
        assert payoff_fraction(4.0, 6.0, 100.0, 60.0) == pytest.approx(0.25)

    def test_negative_when_layout_is_worse(self):
        assert payoff_fraction(1.0, 1.0, 50.0, 60.0) < 0.0

    def test_infinite_when_no_improvement(self):
        assert math.isinf(payoff_fraction(1.0, 1.0, 50.0, 50.0))

    def test_zero_invested_zero_improvement_is_paid_off(self):
        """Investing nothing and gaining nothing is immediately paid off —
        not an infinite pay-off (the adaptive controller's keep-the-layout
        decision relies on this edge)."""
        assert payoff_fraction(0.0, 0.0, 50.0, 50.0) == 0.0

    def test_zero_invested_with_improvement_is_paid_off(self):
        assert payoff_fraction(0.0, 0.0, 50.0, 40.0) == 0.0

    def test_negative_improvement_with_zero_invested_is_zero(self):
        """A worse layout obtained for free: 0 / negative is still 0.0 —
        the sign convention only matters once time was actually invested."""
        assert payoff_fraction(0.0, 0.0, 50.0, 60.0) == 0.0

    def test_negative_improvement_with_investment_is_negative(self):
        assert payoff_fraction(2.0, 3.0, 50.0, 60.0) == pytest.approx(-0.5)

    def test_rejects_negative_times(self):
        with pytest.raises(ValueError):
            payoff_fraction(-1.0, 0.0, 10.0, 5.0)
