"""Unit tests for the vectorized measured-execution backend."""

import pytest

from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.exec.executor import DEFAULT_MEASURED_ROWS, VectorizedScanExecutor
from repro.exec.validation import validate_layouts
from repro.storage.engine import SimulatedDisk, StorageEngine
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def workload():
    schema = TableSchema(
        "exec_t",
        [
            Column("a", 4, "int"),
            Column("b", 8, "decimal"),
            Column("c", 25, "char(25)"),
            Column("d", 4, "date"),
            Column("e", 8, "bigint"),
        ],
        100_000,
    )
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=2.0),
            Query("Q2", ["c"]),
            Query("Q3", ["a", "c", "d", "e"], weight=0.5),
        ],
        name="exec-test",
    )


LAYOUTS = {
    "row": lambda schema: row_partitioning(schema),
    "column": lambda schema: column_partitioning(schema),
    "grouped": lambda schema: Partitioning(schema, [[0, 1], [2], [3, 4]]),
}


class TestTraceParity:
    """The vectorized walk must trace exactly what the simulator walks."""

    @pytest.mark.parametrize("layout_name", sorted(LAYOUTS))
    @pytest.mark.parametrize("buffer_kb", [64, 512, 8 * 1024])
    def test_counters_match_storage_engine(self, workload, layout_name, buffer_kb):
        disk = DiskCharacteristics(buffer_size=buffer_kb * KB)
        layout = LAYOUTS[layout_name](workload.schema)
        executor = VectorizedScanExecutor(layout, disk=disk, rows=10_000)
        engine = StorageEngine(executor.partitioning, disk=SimulatedDisk(disk))
        for query in workload:
            measured = executor.execute_query(query)
            simulated = engine.scan_query(query)
            assert measured.blocks_read == simulated.blocks_read
            assert measured.seeks == simulated.seeks
            assert measured.bytes_read == simulated.bytes_read
            assert measured.partitions_read == simulated.partitions_read
            assert measured.io_seconds == pytest.approx(
                simulated.io_seconds, rel=1e-9
            )

    @pytest.mark.parametrize("layout_name", sorted(LAYOUTS))
    def test_io_matches_analytical_model(self, workload, layout_name):
        disk = DiskCharacteristics(buffer_size=1 * MB)
        model = HDDCostModel(disk)
        layout = LAYOUTS[layout_name](workload.schema)
        executor = VectorizedScanExecutor(layout, disk=disk, rows=10_000)
        for query in workload:
            predicted = model.query_cost(query, executor.partitioning)
            assert executor.execute_query(query).io_seconds == pytest.approx(
                predicted, rel=1e-9
            )

    @pytest.mark.parametrize("layout_name", sorted(LAYOUTS))
    def test_equal_sharing_walk_matches_the_equal_sharing_model(
        self, workload, layout_name
    ):
        # Regression: the walk must trace the *model's* buffer-sharing
        # policy; with a small buffer and a skewed layout the proportional
        # and equal splits produce different refill counts, and a mismatch
        # would masquerade as model error.
        disk = DiskCharacteristics(buffer_size=80 * KB)
        model = HDDCostModel(disk, buffer_sharing="equal")
        layout = LAYOUTS[layout_name](workload.schema)
        executor = VectorizedScanExecutor(
            layout, disk=disk, rows=10_000, buffer_sharing="equal"
        )
        for query in workload:
            predicted = model.query_cost(query, executor.partitioning)
            assert executor.execute_query(query).io_seconds == pytest.approx(
                predicted, rel=1e-9
            )

    def test_unknown_buffer_sharing_rejected(self, workload):
        with pytest.raises(ValueError):
            VectorizedScanExecutor(
                row_partitioning(workload.schema), buffer_sharing="guessed"
            )


class TestExecutorSemantics:
    def test_rows_are_capped_at_the_schema(self, workload):
        executor = VectorizedScanExecutor(
            row_partitioning(workload.schema), rows=10**9
        )
        assert executor.rows == workload.schema.row_count

    def test_default_rows(self, workload):
        executor = VectorizedScanExecutor(row_partitioning(workload.schema))
        assert executor.rows == DEFAULT_MEASURED_ROWS

    def test_invalid_rows_rejected(self, workload):
        with pytest.raises(ValueError):
            VectorizedScanExecutor(row_partitioning(workload.schema), rows=0)

    def test_same_seed_is_deterministic(self, workload):
        layout = LAYOUTS["grouped"](workload.schema)
        first = VectorizedScanExecutor(layout, rows=5_000, data_seed=3)
        second = VectorizedScanExecutor(layout, rows=5_000, data_seed=3)
        run_a = first.execute_workload(workload)
        run_b = second.execute_workload(workload)
        assert run_a.checksum == run_b.checksum
        assert run_a.io_seconds == run_b.io_seconds
        assert run_a.blocks_read == run_b.blocks_read

    def test_different_seed_changes_the_data(self, workload):
        layout = LAYOUTS["grouped"](workload.schema)
        run_a = VectorizedScanExecutor(layout, rows=5_000, data_seed=0).execute_workload(
            workload
        )
        run_b = VectorizedScanExecutor(layout, rows=5_000, data_seed=1).execute_workload(
            workload
        )
        # The trace (block/seek counts) is data-independent...
        assert run_a.blocks_read == run_b.blocks_read
        assert run_a.io_seconds == run_b.io_seconds
        # ... but the scanned bytes are not.
        assert run_a.checksum != run_b.checksum

    def test_workload_totals_are_weighted(self, workload):
        layout = LAYOUTS["column"](workload.schema)
        executor = VectorizedScanExecutor(layout, rows=5_000)
        run = executor.execute_workload(workload)
        expected_io = sum(
            query.weight * executor.execute_query(query).io_seconds
            for query in workload
        )
        assert run.io_seconds == pytest.approx(expected_io, rel=1e-12)
        # Counter totals are per-execution (unweighted) trace sums.
        assert run.blocks_read == sum(
            executor.execute_query(query).blocks_read for query in workload
        )

    def test_predicted_cost_uses_the_measured_scale(self, workload):
        layout = LAYOUTS["grouped"](workload.schema)
        model = HDDCostModel()
        executor = VectorizedScanExecutor(layout, disk=model.disk, rows=5_000)
        scaled = workload.with_schema(executor.schema)
        assert executor.predicted_cost(workload, model) == pytest.approx(
            model.workload_cost(scaled, executor.partitioning), rel=1e-12
        )

    def test_mismatched_workload_rejected(self, workload):
        other_schema = TableSchema("other", [Column("x", 4)], 1_000)
        other = Workload(other_schema, [Query("Q", ["x"])])
        executor = VectorizedScanExecutor(row_partitioning(workload.schema), rows=1_000)
        with pytest.raises(ValueError):
            executor.execute_workload(other)

    def test_shared_data_must_match_measured_rows(self, workload):
        layout = LAYOUTS["column"](workload.schema)
        donor = VectorizedScanExecutor(layout, rows=5_000)
        # Reusing the donor's arrays at the same scale is fine...
        reuse = VectorizedScanExecutor(layout, rows=5_000, data=donor.data)
        assert reuse.execute_workload(workload).checksum == donor.execute_workload(
            workload
        ).checksum
        # ... but a different scale must be rejected, not silently mis-sliced.
        with pytest.raises(ValueError):
            VectorizedScanExecutor(layout, rows=2_000, data=donor.data)


class TestValidateLayouts:
    def test_report_covers_every_layout_and_agrees(self, workload):
        layouts = {name: build(workload.schema) for name, build in LAYOUTS.items()}
        report = validate_layouts(workload, layouts, HDDCostModel(), rows=5_000)
        assert {v.label for v in report.validations} == set(LAYOUTS)
        assert report.rank_correlation >= 0.9
        assert report.max_absolute_relative_error <= 0.02
        assert "rank correlation" in report.describe()

    def test_rejects_models_without_a_disk(self, workload):
        layouts = {"row": row_partitioning(workload.schema)}
        with pytest.raises(ValueError):
            validate_layouts(workload, layouts, MainMemoryCostModel(), rows=1_000)

    def test_rejects_empty_layout_set(self, workload):
        with pytest.raises(ValueError):
            validate_layouts(workload, {}, HDDCostModel())
