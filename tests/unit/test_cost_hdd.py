"""Unit tests for the HDD cost model (the paper's Section 4 formulas)."""

import math

import pytest

from repro.core.partitioning import Partition, Partitioning, column_partitioning, row_partitioning
from repro.cost.disk import DiskCharacteristics, KB, MB
from repro.cost.hdd import HDDCostModel
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def schema():
    return TableSchema(
        "t", [Column("a", 8), Column("b", 8), Column("c", 16)], row_count=100_000
    )


@pytest.fixture
def workload(schema):
    return Workload(schema, [Query("Q1", ["a"]), Query("Q2", ["a", "b", "c"])])


@pytest.fixture
def disk():
    return DiskCharacteristics(
        block_size=8 * KB,
        buffer_size=1 * MB,
        read_bandwidth=100 * MB,
        write_bandwidth=50 * MB,
        seek_time=5e-3,
    )


class TestBuildingBlocks:
    def test_blocks_on_disk_matches_formula(self, schema, disk):
        model = HDDCostModel(disk)
        layout = row_partitioning(schema)
        partition = layout.partitions[0]
        rows_per_block = disk.block_size // 32  # row size 32 bytes
        expected = math.ceil(schema.row_count / rows_per_block)
        assert model.blocks_on_disk(partition, layout) == expected

    def test_blocks_on_disk_handles_rows_wider_than_block(self, disk):
        wide = TableSchema("w", [Column("x", 10 * KB)], row_count=10)
        model = HDDCostModel(disk)
        layout = row_partitioning(wide)
        # One row per block at minimum: 10 rows -> 10 blocks.
        assert model.blocks_on_disk(layout.partitions[0], layout) == 10

    def test_buffer_share_is_proportional_to_row_size(self, schema, disk):
        model = HDDCostModel(disk)
        layout = Partitioning(schema, [[0], [1], [2]])
        partitions = list(layout.partitions)
        narrow = layout.partition_of(0)
        wide = layout.partition_of(2)
        share_narrow = model.buffer_share(narrow, partitions, layout)
        share_wide = model.buffer_share(wide, partitions, layout)
        assert share_wide == pytest.approx(2 * share_narrow, rel=0.01)
        assert share_narrow + share_wide <= disk.buffer_size

    def test_buffer_share_alone_gets_whole_buffer(self, schema, disk):
        model = HDDCostModel(disk)
        layout = row_partitioning(schema)
        partition = layout.partitions[0]
        assert model.buffer_share(partition, [partition], layout) == disk.buffer_size

    def test_seek_cost_increases_when_buffer_is_shared(self, schema, disk):
        model = HDDCostModel(disk)
        column = column_partitioning(schema)
        partition = column.partition_of(0)
        alone = model.seek_cost(partition, [partition], column)
        shared = model.seek_cost(partition, list(column.partitions), column)
        assert shared > alone

    def test_scan_cost_proportional_to_blocks(self, schema, disk):
        model = HDDCostModel(disk)
        layout = row_partitioning(schema)
        partition = layout.partitions[0]
        blocks = model.blocks_on_disk(partition, layout)
        assert model.scan_cost(partition, layout) == pytest.approx(
            blocks * disk.block_size / disk.read_bandwidth
        )


class TestQueryCost:
    def test_query_reads_only_referenced_partitions(self, schema, workload, disk):
        model = HDDCostModel(disk)
        layout = Partitioning(schema, [[0], [1], [2]])
        q1 = workload.query("Q1")
        # Q1 references only attribute a -> cost of reading partition {a} alone.
        partition = layout.partition_of(0)
        expected = model.partition_read_cost(partition, [partition], layout)
        assert model.query_cost(q1, layout) == pytest.approx(expected)

    def test_row_layout_forces_full_reads(self, schema, workload, disk):
        model = HDDCostModel(disk)
        row = row_partitioning(schema)
        q1 = workload.query("Q1")
        q2 = workload.query("Q2")
        # In a row layout both queries read exactly the same data.
        assert model.query_cost(q1, row) == pytest.approx(model.query_cost(q2, row))

    def test_narrow_query_cheaper_on_column_layout(self, schema, workload, disk):
        model = HDDCostModel(disk)
        q1 = workload.query("Q1")
        assert model.query_cost(q1, column_partitioning(schema)) < model.query_cost(
            q1, row_partitioning(schema)
        )

    def test_workload_cost_is_weighted_sum(self, schema, disk):
        model = HDDCostModel(disk)
        workload = Workload(
            schema, [Query("Q1", ["a"], weight=3.0), Query("Q2", ["b"], weight=1.0)]
        )
        layout = column_partitioning(schema)
        expected = 3.0 * model.query_cost(workload.query("Q1"), layout) + model.query_cost(
            workload.query("Q2"), layout
        )
        assert model.workload_cost(workload, layout) == pytest.approx(expected)

    def test_per_query_costs_keys(self, schema, workload, disk):
        model = HDDCostModel(disk)
        costs = model.per_query_costs(workload, column_partitioning(schema))
        assert set(costs) == {"Q1", "Q2"}

    def test_bytes_read_and_needed(self, schema, workload, disk):
        model = HDDCostModel(disk)
        row = row_partitioning(schema)
        q1 = workload.query("Q1")
        assert model.bytes_needed(q1, row) == 8 * schema.row_count
        assert model.bytes_read(q1, row) >= 32 * schema.row_count

    def test_larger_buffer_never_increases_cost(self, schema, workload, disk):
        small = HDDCostModel(disk.with_buffer_size(64 * KB))
        large = HDDCostModel(disk.with_buffer_size(64 * MB))
        layout = column_partitioning(schema)
        for query in workload:
            assert large.query_cost(query, layout) <= small.query_cost(query, layout)

    def test_with_disk_returns_new_model(self, disk):
        model = HDDCostModel(disk)
        other = model.with_disk(disk.with_seek_time(1e-3))
        assert other is not model
        assert other.disk.seek_time == pytest.approx(1e-3)

    def test_describe_mentions_parameters(self, disk):
        assert "buffer" in HDDCostModel(disk).describe()


class TestPaperExample:
    """The introduction's PartSupp example: P1/P2/P3 versus P4/P5."""

    def test_wide_partition_forces_unnecessary_reads_for_q2(self, intro_workload):
        model = HDDCostModel()
        schema = intro_workload.schema
        three_way = Partitioning(schema, [[0, 1], [2, 3], [4]])
        two_way = Partitioning(schema, [[0, 1, 2, 3], [4]])
        q2 = intro_workload.query("Q2")
        # Q2 (availqty, supplycost, comment) reads PartKey/SuppKey unnecessarily
        # under the two-way split, so it must read more bytes.
        assert model.bytes_read(q2, two_way) > model.bytes_read(q2, three_way)

    def test_q1_has_more_random_io_with_narrow_partitions(self, intro_workload):
        # Paper: Q1 has twice the random I/O for P1+P2 than for P4.
        model = HDDCostModel()
        schema = intro_workload.schema
        narrow = Partitioning(schema, [[0, 1], [2, 3], [4]])
        wide = Partitioning(schema, [[0, 1, 2, 3], [4]])
        q1 = intro_workload.query("Q1")
        seeks_narrow = sum(
            model.seek_cost(p, narrow.referenced_partitions(q1), narrow)
            for p in narrow.referenced_partitions(q1)
        )
        seeks_wide = sum(
            model.seek_cost(p, wide.referenced_partitions(q1), wide)
            for p in wide.referenced_partitions(q1)
        )
        assert seeks_narrow > seeks_wide
