"""Unit tests for the synthetic workload generators."""

import pytest

from repro.workload import synthetic


class TestSyntheticTable:
    def test_basic_generation(self):
        schema = synthetic.synthetic_table(6, row_count=1000, random_state=1)
        assert schema.attribute_count == 6
        assert schema.row_count == 1000
        assert all(column.width >= 4 for column in schema.columns)

    def test_deterministic_for_same_seed(self):
        a = synthetic.synthetic_table(5, random_state=7)
        b = synthetic.synthetic_table(5, random_state=7)
        assert a.widths() == b.widths()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            synthetic.synthetic_table(0)
        with pytest.raises(ValueError):
            synthetic.synthetic_table(3, min_width=10, max_width=5)


class TestRandomWorkload:
    def test_query_count_and_footprint_bounds(self):
        schema = synthetic.synthetic_table(8, random_state=0)
        workload = synthetic.random_workload(
            schema, 10, min_attributes=2, max_attributes=4, random_state=0
        )
        assert workload.query_count == 10
        for query in workload:
            assert 2 <= len(query) <= 4

    def test_deterministic_for_same_seed(self):
        schema = synthetic.synthetic_table(8, random_state=0)
        w1 = synthetic.random_workload(schema, 5, random_state=3)
        w2 = synthetic.random_workload(schema, 5, random_state=3)
        assert w1.usage_matrix().tolist() == w2.usage_matrix().tolist()

    def test_invalid_parameters_rejected(self):
        schema = synthetic.synthetic_table(4, random_state=0)
        with pytest.raises(ValueError):
            synthetic.random_workload(schema, 0)
        with pytest.raises(ValueError):
            synthetic.random_workload(schema, 3, min_attributes=0)


class TestRegularWorkload:
    def test_all_queries_share_the_core(self):
        schema = synthetic.synthetic_table(10, random_state=0)
        workload = synthetic.regular_workload(
            schema, 6, core_size=4, noise=0.0, random_state=0
        )
        footprints = [query.index_set for query in workload]
        core = footprints[0]
        assert len(core) == 4
        assert all(fp == core for fp in footprints)

    def test_noise_adds_extra_attributes(self):
        schema = synthetic.synthetic_table(10, random_state=0)
        workload = synthetic.regular_workload(
            schema, 20, core_size=2, noise=1.0, random_state=0
        )
        assert all(len(query) == 10 for query in workload)

    def test_invalid_core_size_rejected(self):
        schema = synthetic.synthetic_table(4, random_state=0)
        with pytest.raises(ValueError):
            synthetic.regular_workload(schema, 3, core_size=9)


class TestFragmentedWorkload:
    def test_minimal_overlap(self):
        schema = synthetic.synthetic_table(12, random_state=0)
        workload = synthetic.fragmented_workload(
            schema, 6, attributes_per_query=2, random_state=0
        )
        # 6 queries x 2 attributes fit in 12 attributes without reuse.
        seen = set()
        for query in workload:
            assert not (seen & query.index_set)
            seen |= query.index_set

    def test_invalid_parameters_rejected(self):
        schema = synthetic.synthetic_table(4, random_state=0)
        with pytest.raises(ValueError):
            synthetic.fragmented_workload(schema, 3, attributes_per_query=0)


class TestClusteredWorkload:
    def test_clusters_share_attribute_groups(self):
        schema = synthetic.synthetic_table(9, random_state=0)
        workload = synthetic.clustered_workload(
            schema, num_clusters=3, queries_per_cluster=2, overlap=0.0, random_state=0
        )
        assert workload.query_count == 6
        footprints = [query.index_set for query in workload]
        # Queries within a cluster share footprints exactly when overlap is 0.
        assert footprints[0] == footprints[1]
        assert footprints[2] == footprints[3]
        assert footprints[0] != footprints[2]

    def test_invalid_parameters_rejected(self):
        schema = synthetic.synthetic_table(4, random_state=0)
        with pytest.raises(ValueError):
            synthetic.clustered_workload(schema, 0, 1)
        with pytest.raises(ValueError):
            synthetic.clustered_workload(schema, 1, 1, overlap=2.0)
