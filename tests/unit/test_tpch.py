"""Unit tests for the TPC-H schema and workload definitions."""

import pytest

from repro.workload import tpch


class TestTpchSchemas:
    def test_all_eight_tables_present(self):
        assert set(tpch.table_names()) == {
            "lineitem", "orders", "customer", "part",
            "partsupp", "supplier", "nation", "region",
        }

    def test_lineitem_has_sixteen_attributes(self):
        schema = tpch.table_schema("lineitem")
        assert schema.attribute_count == 16

    def test_customer_has_eight_attributes(self):
        # The paper quotes B_8 = 4140 possible partitionings for Customer.
        assert tpch.table_schema("customer").attribute_count == 8

    def test_row_counts_scale_with_scale_factor(self):
        sf1 = tpch.table_schema("lineitem", scale_factor=1)
        sf10 = tpch.table_schema("lineitem", scale_factor=10)
        assert sf10.row_count == pytest.approx(10 * sf1.row_count, rel=0.01)

    def test_nation_and_region_do_not_scale(self):
        assert tpch.table_schema("nation", scale_factor=100).row_count == 25
        assert tpch.table_schema("region", scale_factor=100).row_count == 5

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            tpch.table_schema("widgets")

    def test_database_contains_all_tables(self):
        database = tpch.tpch_database(scale_factor=1)
        assert len(database) == 8


class TestTpchWorkloads:
    def test_all_22_queries_defined(self):
        assert len(tpch.TPCH_QUERY_ORDER) == 22
        assert set(tpch.TPCH_QUERY_FOOTPRINTS) == set(tpch.TPCH_QUERY_ORDER)

    def test_footprints_reference_existing_attributes(self):
        for query_name, footprint in tpch.TPCH_QUERY_FOOTPRINTS.items():
            for table, attributes in footprint.items():
                schema = tpch.table_schema(table)
                for attribute in attributes:
                    schema.index_of(attribute)  # raises if unknown

    def test_lineitem_workload_has_seventeen_queries(self):
        # 17 of the 22 TPC-H queries touch Lineitem.
        workload = tpch.tpch_workload("lineitem", scale_factor=1)
        assert workload.query_count == 17

    def test_q1_footprint(self):
        workload = tpch.tpch_workload("lineitem", scale_factor=1)
        q1 = workload.query("Q1")
        names = {workload.schema.attribute_names[i] for i in q1.attribute_indices}
        assert names == {
            "quantity", "extendedprice", "discount", "tax",
            "returnflag", "linestatus", "shipdate",
        }

    def test_q6_footprint_is_four_attributes(self):
        workload = tpch.tpch_workload("lineitem", scale_factor=1)
        assert len(workload.query("Q6")) == 4

    def test_first_k_queries_filter(self):
        workload = tpch.tpch_workload("lineitem", scale_factor=1, num_queries=3)
        assert {q.name for q in workload} == {"Q1", "Q3"}  # Q2 skips lineitem

    def test_num_queries_bounds(self):
        with pytest.raises(ValueError):
            tpch.tpch_workload("lineitem", num_queries=0)
        with pytest.raises(ValueError):
            tpch.tpch_workload("lineitem", num_queries=23)

    def test_workloads_dict_excludes_untouched_tables(self):
        workloads = tpch.tpch_workloads(scale_factor=1, num_queries=1)
        # Q1 only touches lineitem.
        assert set(workloads) == {"lineitem"}

    def test_workloads_dict_full_benchmark_covers_all_tables(self):
        workloads = tpch.tpch_workloads(scale_factor=1)
        assert set(workloads) == set(tpch.table_names())

    def test_lineitem_shorthand(self):
        assert tpch.lineitem_workload(scale_factor=1).schema.name == "lineitem"

    def test_every_query_appears_in_at_least_one_table_workload(self):
        workloads = tpch.tpch_workloads(scale_factor=1)
        seen = set()
        for workload in workloads.values():
            seen.update(query.name for query in workload)
        assert seen == set(tpch.TPCH_QUERY_ORDER)
