"""Unit tests for Partition and Partitioning."""

import pytest

from repro.core.partitioning import (
    Partition,
    Partitioning,
    PartitioningError,
    column_partitioning,
    indices_of_mask,
    mask_of,
    partitioning_from_names,
    row_partitioning,
)
from repro.workload.query import ResolvedQuery


class TestBitmasks:
    def test_mask_roundtrip(self):
        assert mask_of([0, 2, 5]) == 0b100101
        assert indices_of_mask(0b100101) == (0, 2, 5)
        assert mask_of([]) == 0
        assert indices_of_mask(0) == ()

    def test_indices_of_mask_rejects_negative(self):
        with pytest.raises(ValueError):
            indices_of_mask(-1)

    def test_partition_mask(self):
        assert Partition([2, 0, 1]).mask == 0b111
        assert Partition.from_mask(0b101).attributes == frozenset({0, 2})

    def test_from_mask_rejects_invalid(self):
        with pytest.raises(PartitioningError):
            Partition.from_mask(0)
        with pytest.raises(PartitioningError):
            Partition.from_mask(-1)

    def test_partitioning_from_masks(self, small_schema):
        layout = Partitioning.from_masks(small_schema, [0b00011, 0b11100])
        assert layout.as_sets() == [frozenset({0, 1}), frozenset({2, 3, 4})]
        assert layout.as_masks() == [0b00011, 0b11100]

    def test_resolved_query_index_mask(self):
        assert ResolvedQuery("Q", (1, 3)).index_mask == 0b1010


class TestPartition:
    def test_basic_construction(self):
        partition = Partition([2, 0, 1])
        assert partition.sorted_attributes() == (0, 1, 2)
        assert len(partition) == 3
        assert 1 in partition

    def test_rejects_empty(self):
        with pytest.raises(PartitioningError):
            Partition([])

    def test_rejects_negative_indices(self):
        with pytest.raises(PartitioningError):
            Partition([-1, 0])

    def test_row_size(self, small_schema):
        assert Partition([0, 1]).row_size(small_schema) == 8
        assert Partition([4]).row_size(small_schema) == 199

    def test_is_referenced_by(self):
        partition = Partition([0, 1])
        assert partition.is_referenced_by(ResolvedQuery("Q", (1, 3)))
        assert not partition.is_referenced_by(ResolvedQuery("Q", (2, 3)))

    def test_merged_with(self):
        merged = Partition([0]).merged_with(Partition([2]))
        assert merged.attributes == frozenset({0, 2})

    def test_attribute_names(self, small_schema):
        assert Partition([0, 4]).attribute_names(small_schema) == ("partkey", "comment")

    def test_ordering(self):
        assert Partition([0]) < Partition([1])


class TestPartitioning:
    def test_valid_partitioning(self, small_schema):
        layout = Partitioning(small_schema, [[0, 1], [2, 3], [4]])
        assert layout.partition_count == 3
        assert not layout.is_row_layout()
        assert not layout.is_column_layout()

    def test_rejects_overlapping_partitions(self, small_schema):
        with pytest.raises(PartitioningError, match="more than one"):
            Partitioning(small_schema, [[0, 1], [1, 2], [3, 4]])

    def test_rejects_missing_attributes(self, small_schema):
        with pytest.raises(PartitioningError, match="misses"):
            Partitioning(small_schema, [[0, 1], [2]])

    def test_rejects_unknown_attributes(self, small_schema):
        with pytest.raises(PartitioningError, match="unknown"):
            Partitioning(small_schema, [[0, 1, 2, 3, 4, 7]])

    def test_validate_false_skips_checks(self, small_schema):
        # Used internally by algorithms that construct throwaway candidates.
        layout = Partitioning(small_schema, [[0, 1]], validate=False)
        assert layout.partition_count == 1

    def test_partition_of(self, small_schema):
        layout = Partitioning(small_schema, [[0, 1], [2, 3, 4]])
        assert layout.partition_of(3).attributes == frozenset({2, 3, 4})
        with pytest.raises(PartitioningError):
            layout.partition_of(9)

    def test_referenced_partitions(self, small_schema):
        layout = Partitioning(small_schema, [[0, 1], [2, 3], [4]])
        query = ResolvedQuery("Q", (0, 4))
        referenced = layout.referenced_partitions(query)
        assert len(referenced) == 2

    def test_equality_ignores_partition_order(self, small_schema):
        a = Partitioning(small_schema, [[0, 1], [2, 3], [4]])
        b = Partitioning(small_schema, [[4], [2, 3], [1, 0]])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self, small_schema):
        a = Partitioning(small_schema, [[0, 1], [2, 3], [4]])
        b = Partitioning(small_schema, [[0], [1], [2, 3], [4]])
        assert a != b

    def test_as_names(self, small_schema):
        layout = Partitioning(small_schema, [[0, 1], [2, 3], [4]])
        assert ("partkey", "suppkey") in layout.as_names()

    def test_describe_lists_groups(self, small_schema):
        text = Partitioning(small_schema, [[0, 1], [2, 3], [4]]).describe()
        assert "partkey" in text and "comment" in text


class TestFactories:
    def test_row_partitioning(self, small_schema):
        layout = row_partitioning(small_schema)
        assert layout.is_row_layout()
        assert layout.partition_count == 1

    def test_column_partitioning(self, small_schema):
        layout = column_partitioning(small_schema)
        assert layout.is_column_layout()
        assert layout.partition_count == small_schema.attribute_count

    def test_partitioning_from_names(self, small_schema):
        layout = partitioning_from_names(
            small_schema,
            [["partkey", "suppkey"], ["availqty", "supplycost"], ["comment"]],
        )
        assert layout.partition_count == 3
        assert layout.partition_of(0).attributes == frozenset({0, 1})
