"""Unit tests for the brute force algorithm."""

import pytest

from repro.algorithms.brute_force import (
    BruteForceAlgorithm,
    BruteForceSearchSpaceError,
)
from repro.algorithms.support.enumeration import bell_number
from repro.cost.hdd import HDDCostModel
from repro.workload import synthetic
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


class TestSearchSpaceGuard:
    def test_refuses_wide_tables(self, hdd_model):
        schema = synthetic.synthetic_table(20, random_state=0)
        workload = synthetic.random_workload(schema, 5, random_state=0)
        algorithm = BruteForceAlgorithm(max_attributes=8, collapse_primary_partitions=False)
        with pytest.raises(BruteForceSearchSpaceError):
            algorithm.compute(workload, hdd_model)

    def test_limit_applies_after_primary_partition_collapse(self, hdd_model):
        """A wide table with few distinct access signatures is still feasible."""
        schema = synthetic.synthetic_table(20, random_state=0)
        names = schema.attribute_names
        workload = Workload(
            schema,
            [Query("Q1", names[:10]), Query("Q2", names[10:])],
        )
        algorithm = BruteForceAlgorithm(max_attributes=4)
        layout = algorithm.compute(workload, hdd_model)
        assert layout.partition_count >= 1


class TestOptimality:
    def test_finds_optimum_on_intro_example(self, intro_workload, hdd_model):
        """On the paper's PartSupp example the optimum splits into P1/P2/P3."""
        algorithm = BruteForceAlgorithm()
        layout = algorithm.compute(intro_workload, hdd_model)
        names = set(layout.as_names())
        assert ("partkey", "suppkey") in names
        assert ("availqty", "supplycost") in names
        assert ("comment",) in names

    def test_never_worse_than_any_heuristic(self, partsupp_workload, hdd_model):
        from repro.core.algorithm import get_algorithm

        brute = BruteForceAlgorithm().run(partsupp_workload, hdd_model)
        for name in ("hillclimb", "autopart", "hyrise", "navathe", "o2p", "trojan"):
            heuristic = get_algorithm(name).run(partsupp_workload, hdd_model)
            assert brute.estimated_cost <= heuristic.estimated_cost * 1.0001

    def test_collapse_and_raw_enumeration_agree(self, hdd_model):
        schema = TableSchema(
            "t",
            [Column("a", 4), Column("b", 8), Column("c", 16), Column("d", 150)],
            row_count=50_000,
        )
        workload = Workload(
            schema,
            [Query("Q1", ["a", "b"]), Query("Q2", ["b", "c"]), Query("Q3", ["d"])],
        )
        collapsed = BruteForceAlgorithm(collapse_primary_partitions=True).run(
            workload, hdd_model
        )
        raw = BruteForceAlgorithm(collapse_primary_partitions=False).run(
            workload, hdd_model
        )
        assert collapsed.estimated_cost == pytest.approx(raw.estimated_cost)

    def test_metadata_reports_candidate_counts(self, partsupp_workload, hdd_model):
        algorithm = BruteForceAlgorithm()
        result = algorithm.run(partsupp_workload, hdd_model)
        units = result.metadata["enumeration_units"]
        assert result.metadata["candidates_evaluated"] == bell_number(units)
        assert result.metadata["collapsed_primary_partitions"] is True

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BruteForceAlgorithm(max_attributes=0)
