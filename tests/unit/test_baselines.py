"""Unit tests for the row/column baselines and perfect materialised views."""

import pytest

from repro.algorithms.baselines import (
    ColumnLayoutAlgorithm,
    PerfectMaterializedViews,
    RowLayoutAlgorithm,
)
from repro.core.partitioning import column_partitioning, row_partitioning


class TestRowAndColumnBaselines:
    def test_row_layout(self, partsupp_workload, hdd_model):
        layout = RowLayoutAlgorithm().compute(partsupp_workload, hdd_model)
        assert layout.is_row_layout()

    def test_column_layout(self, partsupp_workload, hdd_model):
        layout = ColumnLayoutAlgorithm().compute(partsupp_workload, hdd_model)
        assert layout.is_column_layout()

    def test_baselines_ignore_cost_model(self, partsupp_workload, hdd_model, mm_model):
        row_hdd = RowLayoutAlgorithm().compute(partsupp_workload, hdd_model)
        row_mm = RowLayoutAlgorithm().compute(partsupp_workload, mm_model)
        assert row_hdd == row_mm


class TestPerfectMaterializedViews:
    def test_pmv_is_cheaper_than_any_partitioning(self, partsupp_workload, hdd_model):
        """PMV reads exactly the needed attributes from one projection per
        query, so no legal partitioning can beat it."""
        pmv_cost = PerfectMaterializedViews().workload_cost(partsupp_workload, hdd_model)
        for layout in (
            row_partitioning(partsupp_workload.schema),
            column_partitioning(partsupp_workload.schema),
        ):
            assert pmv_cost <= hdd_model.workload_cost(partsupp_workload, layout)

    def test_pmv_cheaper_than_best_algorithm(self, customer_workload, hdd_model):
        from repro.core.algorithm import get_algorithm

        pmv_cost = PerfectMaterializedViews().workload_cost(customer_workload, hdd_model)
        best = get_algorithm("hillclimb").run(customer_workload, hdd_model)
        assert pmv_cost <= best.estimated_cost

    def test_per_query_costs_positive(self, partsupp_workload, hdd_model):
        costs = PerfectMaterializedViews().per_query_costs(partsupp_workload, hdd_model)
        assert set(costs) == {q.name for q in partsupp_workload}
        assert all(value > 0 for value in costs.values())

    def test_query_covering_all_attributes_equals_row_scan(self, hdd_model):
        """If a query needs every attribute its perfect projection is the row
        layout itself."""
        from repro.workload.query import Query
        from repro.workload.schema import Column, TableSchema
        from repro.workload.workload import Workload

        schema = TableSchema("t", [Column("a", 4), Column("b", 8)], row_count=10_000)
        workload = Workload(schema, [Query("Q1", ["a", "b"])])
        pmv_cost = PerfectMaterializedViews().workload_cost(workload, hdd_model)
        row_cost = hdd_model.workload_cost(workload, row_partitioning(schema))
        assert pmv_cost == pytest.approx(row_cost)
