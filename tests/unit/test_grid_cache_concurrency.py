"""Concurrent ResultCache use: threads and processes sharing one cache dir.

The service layer (``repro.service``) makes concurrent access the *default*
pattern: every job worker thread runs grid cells against one shared cache
root, and a CLI grid run may be hammering the same directory from another
process at the same time.  The cache's contract under that load:

* writes are atomic (temp file + ``os.replace``), so a reader never observes
  a half-written entry — every load is either a full trusted payload or a
  miss, never ``corrupt``;
* last-writer-wins on one key is harmless because two writers of the same
  key by construction carry the same content;
* I/O failures (root occupied by a file, entry path occupied by a
  directory) are counted per instance and degrade to cache-less operation
  instead of raising.
"""

import json
import multiprocessing
import threading

import pytest

from repro.grid.cache import ResultCache, content_key


def _entry(index: int):
    """Deterministic (inputs, key, payload) triple number ``index``."""
    inputs = {"cell": index, "content": f"entry-{index}"}
    payload = {
        "algorithm": "hillclimb",
        "layout": [["a", "b"], ["c"]],
        "estimated_cost": 1.0 + index,
    }
    return inputs, content_key(inputs), payload


def _hammer(root: str, indices, iterations: int):
    """One worker's loop: store and load every given entry repeatedly.

    Runs in a thread or a child process; returns the cache's counters so the
    caller can assert nothing was ever distrusted.
    """
    cache = ResultCache(root)
    seen_payloads = 0
    for _ in range(iterations):
        for index in indices:
            inputs, key, payload = _entry(index)
            cache.store(key, inputs, payload)
            loaded = cache.load(key)
            if loaded is not None:
                assert loaded == payload
                seen_payloads += 1
    return {
        "hits": cache.hits,
        "corrupt": cache.corrupt,
        "stale": cache.stale,
        "store_failures": cache.store_failures,
        "load_failures": cache.load_failures,
        "seen": seen_payloads,
    }


class TestThreadedAccess:
    def test_threads_hammering_same_key_never_see_partial_writes(self, tmp_path):
        root = str(tmp_path)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(_hammer(root, [0], 60)))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        for counters in results:
            # Every concurrent load was a full, trusted payload: atomic
            # os.replace means no reader interleaves with a writer.
            assert counters["corrupt"] == 0
            assert counters["stale"] == 0
            assert counters["store_failures"] == 0
            assert counters["load_failures"] == 0
            assert counters["seen"] == counters["hits"] == 60
        _, key, payload = _entry(0)
        assert ResultCache(root).load(key) == payload

    def test_threads_on_disjoint_keys_share_one_root(self, tmp_path):
        root = str(tmp_path)
        results = []

        def run(index: int) -> None:
            results.append(_hammer(root, [index], 40))

        threads = [
            threading.Thread(target=run, args=(index,)) for index in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for counters in results:
            assert counters["corrupt"] == 0
            assert counters["load_failures"] == 0
        # All six entries landed intact.
        verify = ResultCache(root)
        for index in range(6):
            _, key, payload = _entry(index)
            assert verify.load(key) == payload
        assert verify.hits == 6

    def test_mixed_same_and_different_keys(self, tmp_path):
        root = str(tmp_path)
        results = []

        def run(indices) -> None:
            results.append(_hammer(root, indices, 30))

        # Every worker shares key 0 and owns one private key.
        threads = [
            threading.Thread(target=run, args=([0, 10 + index],))
            for index in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for counters in results:
            assert counters["corrupt"] == 0
            assert counters["seen"] == counters["hits"] == 60


def _hammer_in_child(root, indices, iterations, queue):  # pragma: no cover
    queue.put(_hammer(root, indices, iterations))


class TestMultiprocessAccess:
    def test_processes_hammering_one_cache_dir(self, tmp_path):
        root = str(tmp_path)
        context = multiprocessing.get_context()
        queue = context.Queue()
        workers = [
            # Everyone fights over key 0; each also owns a private key.
            context.Process(
                target=_hammer_in_child, args=(root, [0, 100 + rank], 25, queue)
            )
            for rank in range(3)
        ]
        for process in workers:
            process.start()
        results = [queue.get(timeout=60) for _ in workers]
        for process in workers:
            process.join(timeout=60)
            assert process.exitcode == 0
        for counters in results:
            assert counters["corrupt"] == 0
            assert counters["stale"] == 0
            assert counters["store_failures"] == 0
            assert counters["load_failures"] == 0
            assert counters["seen"] == counters["hits"] == 50
        verify = ResultCache(root)
        for index in (0, 100, 101, 102):
            _, key, payload = _entry(index)
            assert verify.load(key) == payload


class TestFailureCounters:
    def test_store_failures_counted_when_root_is_a_file(self, tmp_path):
        occupied = tmp_path / "not-a-dir"
        occupied.write_text("occupied")
        cache = ResultCache(occupied)
        inputs, key, payload = _entry(0)
        with pytest.warns(RuntimeWarning, match="cannot write"):
            cache.store(key, inputs, payload)
        cache.store(key, inputs, payload)  # later failures count silently
        assert cache.store_failures == 2
        assert cache.stores == 0
        # Lookups treat the unusable root as misses, not failures.
        assert cache.load(key) is None
        assert cache.misses == 1 and cache.load_failures == 0

    def test_load_failures_counted_when_entry_path_is_a_directory(self, tmp_path):
        cache = ResultCache(tmp_path)
        inputs, key, payload = _entry(1)
        # Occupy the entry's own path with a directory: reading it raises
        # IsADirectoryError — an OSError that is not "entry absent".
        cache.path_for(key).mkdir(parents=True)
        with pytest.warns(RuntimeWarning, match="cannot read"):
            assert cache.load(key) is None
        assert cache.load_failures == 1
        assert cache.misses == 0 and cache.corrupt == 0
        assert "degraded: 0 store / 1 load I/O failures" in cache.describe()

    def test_concurrent_writers_against_broken_root_only_count(self, tmp_path):
        occupied = tmp_path / "file-root"
        occupied.write_text("occupied")
        root = str(occupied)

        def run(results: list) -> None:
            cache = ResultCache(root)
            inputs, key, payload = _entry(2)
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                for _ in range(10):
                    cache.store(key, inputs, payload)
            results.append(cache.store_failures)

        results: list = []
        threads = [threading.Thread(target=run, args=(results,)) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [10, 10, 10]

    def test_interrupted_write_is_invisible_to_readers(self, tmp_path):
        """A torn write (simulated half-entry at the final path) is rejected
        as corrupt and recomputed — never served."""
        cache = ResultCache(tmp_path)
        inputs, key, payload = _entry(3)
        cache.store(key, inputs, payload)
        raw = cache.path_for(key).read_text()
        cache.path_for(key).write_text(raw[: len(raw) // 2])
        fresh = ResultCache(tmp_path)
        assert fresh.load(key) is None
        assert fresh.corrupt == 1
