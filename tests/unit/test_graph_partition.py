"""Unit tests for the k-way graph partitioner used by HYRISE."""

import pytest

from repro.algorithms.support.graph_partition import kway_partition


class TestKwayPartition:
    def test_empty_graph(self):
        assert kway_partition([], {}, max_nodes_per_part=2) == []

    def test_everything_fits_in_one_part(self):
        groups = kway_partition([1, 2, 3], {(1, 2): 1.0}, max_nodes_per_part=5)
        assert groups == [{1, 2, 3}]

    def test_capacity_respected(self):
        nodes = list(range(7))
        groups = kway_partition(nodes, {}, max_nodes_per_part=3)
        assert all(len(group) <= 3 for group in groups)
        covered = set().union(*groups)
        assert covered == set(nodes)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            kway_partition([1], {}, max_nodes_per_part=0)

    def test_strongly_connected_pairs_stay_together(self):
        nodes = ["a", "b", "c", "d"]
        weights = {("a", "b"): 100.0, ("c", "d"): 100.0, ("a", "c"): 0.1}
        groups = kway_partition(nodes, weights, max_nodes_per_part=2)
        as_sets = [frozenset(group) for group in groups]
        assert frozenset({"a", "b"}) in as_sets
        assert frozenset({"c", "d"}) in as_sets

    def test_every_node_assigned_exactly_once(self):
        nodes = list(range(10))
        weights = {(i, i + 1): float(i) for i in range(9)}
        groups = kway_partition(nodes, weights, max_nodes_per_part=4)
        counts = {}
        for group in groups:
            for node in group:
                counts[node] = counts.get(node, 0) + 1
        assert all(count == 1 for count in counts.values())
        assert set(counts) == set(nodes)

    def test_deterministic(self):
        nodes = list(range(8))
        weights = {(i, (i + 3) % 8): 1.0 + i for i in range(8)}
        first = kway_partition(nodes, weights, max_nodes_per_part=3)
        second = kway_partition(nodes, weights, max_nodes_per_part=3)
        assert first == second

    def test_edge_direction_ignored(self):
        groups_forward = kway_partition([0, 1, 2, 3], {(0, 1): 5.0}, 2)
        groups_backward = kway_partition([0, 1, 2, 3], {(1, 0): 5.0}, 2)
        assert [frozenset(g) for g in groups_forward] == [
            frozenset(g) for g in groups_backward
        ]
