"""Unit tests for the cost-regret drift detector (repro.online.drift)."""

import pytest

from repro.core.partitioning import column_partitioning, row_partitioning
from repro.cost.evaluator import CostEvaluator
from repro.cost.hdd import HDDCostModel
from repro.cost.mainmemory import MainMemoryCostModel
from repro.online.drift import CostRegretDetector, best_case_bound
from repro.online.stats import SlidingWindowStats
from repro.workload.query import Query
from repro.workload.synthetic import synthetic_table


@pytest.fixture
def schema():
    return synthetic_table(8, row_count=200_000, random_state=0)


def narrow_stats(schema, count=20, window=16):
    """A window of narrow queries (single attribute) — terrible for row."""
    stats = SlidingWindowStats(schema, window)
    query = Query("n", [schema.attribute_names[0]]).resolve(schema)
    for _ in range(count):
        stats.observe(query)
    return stats


def window_evaluator(stats, model):
    return CostEvaluator(stats.as_workload(), model)


class TestBestCaseBound:
    def test_bandwidth_bound_below_any_layout(self, schema):
        model = HDDCostModel()
        stats = narrow_stats(schema)
        evaluator = window_evaluator(stats, model)
        bound = best_case_bound(stats, model, evaluator)
        for layout in (row_partitioning(schema), column_partitioning(schema)):
            assert bound <= evaluator.evaluate(layout.as_masks())

    def test_column_fallback_without_bandwidth(self, schema):
        model = MainMemoryCostModel()
        stats = narrow_stats(schema)
        evaluator = window_evaluator(stats, model)
        column_masks = column_partitioning(schema).as_masks()
        assert best_case_bound(stats, model, evaluator) == pytest.approx(
            evaluator.evaluate(column_masks)
        )

    def test_fallback_requires_evaluator(self, schema):
        model = MainMemoryCostModel()
        with pytest.raises(ValueError):
            best_case_bound(narrow_stats(schema), model, None)


class TestCostRegretDetector:
    def test_no_fire_during_warmup(self, schema):
        model = HDDCostModel()
        detector = CostRegretDetector(model, threshold=0.1, min_arrivals=50)
        stats = narrow_stats(schema, count=20)
        assert not detector.should_check(stats)
        decision = detector.check(
            stats, row_partitioning(schema).as_masks(), window_evaluator(stats, model)
        )
        assert not decision.fired and decision.reason == "not-due"

    def test_fires_on_bad_deployed_layout(self, schema):
        model = HDDCostModel()
        detector = CostRegretDetector(model, threshold=1.0, min_arrivals=4)
        stats = narrow_stats(schema)
        # Row layout reads the full table for single-attribute queries.
        decision = detector.check(
            stats, row_partitioning(schema).as_masks(), window_evaluator(stats, model)
        )
        assert decision.fired
        assert decision.regret > 1.0
        assert decision.deployed_cost > decision.bound_cost > 0.0
        assert detector.firings == [decision]

    def test_quiet_on_good_deployed_layout(self, schema):
        model = HDDCostModel()
        detector = CostRegretDetector(model, threshold=1.0, min_arrivals=4)
        stats = narrow_stats(schema)
        # Column layout reads exactly the needed attribute; regret is only
        # seek/rounding overhead, well under the threshold.
        decision = detector.check(
            stats,
            column_partitioning(schema).as_masks(),
            window_evaluator(stats, model),
        )
        assert not decision.fired

    def test_cooldown_silences_after_firing(self, schema):
        model = HDDCostModel()
        detector = CostRegretDetector(model, threshold=0.5, min_arrivals=4, cooldown=10)
        stats = narrow_stats(schema, count=8)
        masks = row_partitioning(schema).as_masks()
        assert detector.check(stats, masks, window_evaluator(stats, model)).fired
        # Within the cooldown the detector does not even check.
        stats.observe(Query("n", [schema.attribute_names[0]]).resolve(schema))
        assert not detector.should_check(stats)
        # After the cooldown has passed it checks (and fires) again.
        for _ in range(10):
            stats.observe(Query("n", [schema.attribute_names[0]]).resolve(schema))
        assert detector.check(stats, masks, window_evaluator(stats, model)).fired

    def test_check_every_skips_off_cycle_arrivals(self, schema):
        model = HDDCostModel()
        detector = CostRegretDetector(model, threshold=0.5, min_arrivals=2, check_every=4)
        stats = narrow_stats(schema, count=5)  # 5 % 4 != 0
        assert not detector.should_check(stats)
        for _ in range(3):
            stats.observe(Query("n", [schema.attribute_names[0]]).resolve(schema))
        assert detector.should_check(stats)  # arrival 8

    def test_rejects_bad_parameters(self, schema):
        model = HDDCostModel()
        with pytest.raises(ValueError):
            CostRegretDetector(model, threshold=0.0)
        with pytest.raises(ValueError):
            CostRegretDetector(model, min_arrivals=0)
        with pytest.raises(ValueError):
            CostRegretDetector(model, cooldown=-1)
        with pytest.raises(ValueError):
            CostRegretDetector(model, check_every=0)
