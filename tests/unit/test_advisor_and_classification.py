"""Unit tests for the LayoutAdvisor public API and the classification tables."""

import pytest

from repro.core import classification
from repro.core.advisor import LayoutAdvisor
from repro.core.algorithm import get_algorithm
from repro.cost.mainmemory import MainMemoryCostModel


class TestLayoutAdvisor:
    def test_recommend_returns_all_algorithms(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb", "navathe"))
        report = advisor.recommend(partsupp_workload)
        assert {rec.algorithm for rec in report.recommendations} == {
            "hillclimb",
            "navathe",
        }

    def test_best_is_cheapest(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb", "navathe", "o2p"))
        report = advisor.recommend(partsupp_workload)
        best = report.best
        assert all(best.estimated_cost <= rec.estimated_cost for rec in report.recommendations)

    def test_by_algorithm_lookup(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        report = advisor.recommend(partsupp_workload)
        assert report.by_algorithm("hillclimb").algorithm == "hillclimb"
        with pytest.raises(KeyError):
            report.by_algorithm("navathe")

    def test_recommend_layout_shortcut(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        layout = advisor.recommend_layout(partsupp_workload)
        assert layout.partition_count >= 1

    def test_row_and_column_costs_reported(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        report = advisor.recommend(partsupp_workload)
        assert report.row_cost > report.column_cost > 0

    def test_metrics_attached_to_recommendations(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        recommendation = advisor.recommend(partsupp_workload).by_algorithm("hillclimb")
        assert recommendation.improvement_over_row > 0
        assert 0 <= recommendation.unnecessary_data_fraction <= 1
        assert recommendation.average_reconstruction_joins >= 0
        assert recommendation.creation_time > 0

    def test_algorithm_options_forwarded(self, partsupp_workload):
        advisor = LayoutAdvisor(
            algorithms=("trojan",),
            algorithm_options={"trojan": {"interestingness_threshold": 1.0}},
        )
        report = advisor.recommend(partsupp_workload)
        expected = {frozenset(f) for f in partsupp_workload.primary_partitions()}
        assert set(report.by_algorithm("trojan").partitioning.as_sets()) == expected

    def test_custom_cost_model(self, partsupp_workload):
        advisor = LayoutAdvisor(
            cost_model=MainMemoryCostModel(), algorithms=("hillclimb",)
        )
        report = advisor.recommend(partsupp_workload)
        assert "main-memory" in report.cost_model_description

    def test_recommend_all(self, partsupp_workload, customer_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb",))
        reports = advisor.recommend_all(
            {"partsupp": partsupp_workload, "customer": customer_workload}
        )
        assert set(reports) == {"partsupp", "customer"}

    def test_report_rendering(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=("hillclimb", "navathe"))
        report = advisor.recommend(partsupp_workload)
        text = report.describe()
        assert "hillclimb" in text and "navathe" in text
        rows = report.to_rows()
        assert len(rows) == 2
        assert rows[0]["estimated_cost_s"] <= rows[1]["estimated_cost_s"]

    def test_empty_report_best_raises(self, partsupp_workload):
        advisor = LayoutAdvisor(algorithms=())
        report = advisor.recommend(partsupp_workload)
        with pytest.raises(ValueError):
            report.best


class TestClassificationTables:
    def test_table1_contains_all_seven_algorithms(self):
        algorithms = {row.algorithm for row in classification.TABLE_1}
        assert algorithms == {
            "autopart", "hillclimb", "hyrise", "navathe", "o2p", "trojan", "brute-force",
        }

    def test_table1_matches_algorithm_class_attributes(self):
        for row in classification.TABLE_1:
            if row.algorithm == "brute-force":
                continue
            algorithm = get_algorithm(row.algorithm)
            assert algorithm.search_strategy == row.search_strategy
            assert algorithm.starting_point == row.starting_point
            assert algorithm.candidate_pruning == row.candidate_pruning

    def test_table2_unified_setting_present(self):
        unified = classification.setting_for("unified")
        assert unified.hardware == "hard-disk"
        assert unified.workload == "offline"
        assert unified.replication == "none"

    def test_no_two_algorithms_share_the_same_native_setting(self):
        """Table 2's point: every algorithm was proposed under a different setting."""
        settings = [
            (row.granularity, row.hardware, row.workload, row.replication, row.system)
            for row in classification.TABLE_2
            if row.algorithm != "unified"
        ]
        assert len(settings) == len(set(settings))

    def test_lookup_helpers(self):
        assert classification.classification_for("hillclimb").search_strategy == "bottom-up"
        with pytest.raises(KeyError):
            classification.classification_for("unknown")
        with pytest.raises(KeyError):
            classification.setting_for("unknown")

    def test_formatting_helpers(self):
        assert "hillclimb" in classification.format_classification_table()
        assert "unified" in classification.format_settings_table()
        assert len(classification.classification_table()) == 7
        assert len(classification.settings_table()) == 7
