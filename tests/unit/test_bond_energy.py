"""Unit tests for the Bond Energy Algorithm."""

import numpy as np
import pytest

from repro.algorithms.support.bond_energy import bond_energy_order, bond_energy_score


class TestBondEnergyOrder:
    def test_empty_and_singleton(self):
        assert bond_energy_order(np.zeros((0, 0))) == []
        assert bond_energy_order(np.ones((1, 1))) == [0]

    def test_result_is_a_permutation(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((7, 7))
        matrix = matrix + matrix.T
        order = bond_energy_order(matrix)
        assert sorted(order) == list(range(7))

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError):
            bond_energy_order(np.zeros((2, 3)))

    def test_clusters_block_structure(self):
        """Two disjoint affinity blocks must end up contiguous in the order."""
        affinity = np.zeros((6, 6))
        block_a = [0, 2, 4]
        block_b = [1, 3, 5]
        for block in (block_a, block_b):
            for i in block:
                for j in block:
                    affinity[i, j] = 10.0
        order = bond_energy_order(affinity)
        positions_a = sorted(order.index(i) for i in block_a)
        positions_b = sorted(order.index(i) for i in block_b)
        # Each block occupies consecutive positions.
        assert positions_a == list(range(positions_a[0], positions_a[0] + 3))
        assert positions_b == list(range(positions_b[0], positions_b[0] + 3))

    def test_ordering_at_least_as_good_as_identity_on_clustered_input(self):
        affinity = np.array(
            [
                [5.0, 0.0, 5.0, 0.0],
                [0.0, 3.0, 0.0, 3.0],
                [5.0, 0.0, 5.0, 0.0],
                [0.0, 3.0, 0.0, 3.0],
            ]
        )
        order = bond_energy_order(affinity)
        assert bond_energy_score(affinity, order) >= bond_energy_score(
            affinity, [0, 1, 2, 3]
        )

    def test_initial_order_is_respected(self):
        affinity = np.eye(4)
        order = bond_energy_order(affinity, initial=[3, 2, 1, 0])
        assert order == [3, 2, 1, 0]

    def test_initial_order_with_duplicates_rejected(self):
        with pytest.raises(ValueError):
            bond_energy_order(np.eye(3), initial=[0, 0])

    def test_initial_order_with_unknown_index_rejected(self):
        with pytest.raises(ValueError):
            bond_energy_order(np.eye(3), initial=[5])


class TestBondEnergyScore:
    def test_score_of_trivial_orders(self):
        affinity = np.ones((3, 3))
        assert bond_energy_score(affinity, [0]) == 0.0
        assert bond_energy_score(affinity, [0, 1]) == pytest.approx(3.0)

    def test_score_depends_on_adjacency(self):
        affinity = np.array(
            [
                [1.0, 1.0, 0.0],
                [1.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        good = bond_energy_score(affinity, [0, 1, 2])
        bad = bond_energy_score(affinity, [0, 2, 1])
        assert good > bad
