"""Unit tests for the query model."""

import pytest

from repro.workload.query import Query, QueryError, ResolvedQuery, make_query


class TestQuery:
    def test_basic_construction(self):
        query = Query("Q1", ["a", "b"], weight=2.0, selectivity=0.5)
        assert query.name == "Q1"
        assert query.attributes == frozenset({"a", "b"})
        assert query.weight == 2.0
        assert query.selectivity == 0.5

    def test_duplicate_attributes_collapse(self):
        query = Query("Q1", ["a", "a", "b"])
        assert query.attributes == frozenset({"a", "b"})

    def test_rejects_empty_name(self):
        with pytest.raises(QueryError):
            Query("", ["a"])

    def test_rejects_empty_attributes(self):
        with pytest.raises(QueryError):
            Query("Q1", [])

    def test_rejects_non_positive_weight(self):
        with pytest.raises(QueryError):
            Query("Q1", ["a"], weight=0)

    def test_rejects_bad_selectivity(self):
        with pytest.raises(QueryError):
            Query("Q1", ["a"], selectivity=0.0)
        with pytest.raises(QueryError):
            Query("Q1", ["a"], selectivity=1.5)

    def test_references(self):
        query = Query("Q1", ["a", "b"])
        assert query.references("a")
        assert not query.references("c")

    def test_with_weight_preserves_other_fields(self):
        query = Query("Q1", ["a"], selectivity=0.2)
        reweighted = query.with_weight(5.0)
        assert reweighted.weight == 5.0
        assert reweighted.selectivity == 0.2
        assert reweighted.attributes == query.attributes

    def test_make_query_helper(self):
        assert make_query("Q9", ["x"]).name == "Q9"

    def test_resolve_against_schema(self, small_schema):
        query = Query("Q1", ["partkey", "comment"])
        resolved = query.resolve(small_schema)
        assert resolved.attribute_indices == (0, 4)
        assert resolved.name == "Q1"


class TestResolvedQuery:
    def test_index_set_and_membership(self):
        resolved = ResolvedQuery("Q1", (0, 2, 5))
        assert resolved.index_set == frozenset({0, 2, 5})
        assert resolved.references_index(2)
        assert not resolved.references_index(3)
        assert len(resolved) == 3

    def test_references_any(self):
        resolved = ResolvedQuery("Q1", (0, 2))
        assert resolved.references_any([2, 9])
        assert not resolved.references_any([1, 3])

    def test_referenced_subset(self):
        resolved = ResolvedQuery("Q1", (0, 2, 4))
        assert resolved.referenced_subset([2, 3, 4]) == frozenset({2, 4})
