"""Unit tests for the sqlite grid backend: spec validation, cache identity, CLI.

The critical invariant pinned here is cache-key compatibility: estimated and
measured cells hash exactly the same inputs as before the sqlite backend
existed (pre-existing caches stay valid), while sqlite cells add their own
execution fingerprint — engine marker, effective rows, data seed, page size —
and nothing host-specific.
"""

import pytest

from repro.cost.hdd import HDDCostModel
from repro.grid.cache import (
    cell_inputs,
    content_key,
    execution_fingerprint,
    sqlite_execution_fingerprint,
)
from repro.grid.cli import _spec_from_args, build_parser
from repro.grid.spec import (
    GridError,
    GridSpec,
    canonical_measurement,
    resolve_sqlite_measurement,
)
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


@pytest.fixture
def workload():
    schema = TableSchema("sb", [Column("a", 4), Column("b", 16)], 5_000)
    return Workload(
        schema, [Query("Q1", ["a"]), Query("Q2", ["a", "b"])], name="sqlite-unit"
    )


class TestMeasurementValidation:
    def test_sqlite_accepts_page_size(self):
        canonical = canonical_measurement(
            {"rows": 100, "page_size": 8192}, backend="sqlite"
        )
        assert dict(canonical) == {"rows": 100, "page_size": 8192}

    def test_measured_rejects_page_size(self):
        with pytest.raises(GridError):
            canonical_measurement({"page_size": 8192}, backend="measured")

    def test_invalid_page_size_rejected(self):
        with pytest.raises(GridError):
            canonical_measurement({"page_size": 1000}, backend="sqlite")

    def test_resolve_defaults_page_size(self):
        settings = resolve_sqlite_measurement({"rows": 42})
        assert settings["page_size"] == 4096
        assert settings["rows"] == 42
        assert settings["data_seed"] == 0

    def test_spec_accepts_sqlite_measurement(self):
        spec = GridSpec(
            name="s",
            algorithms=("hillclimb",),
            workloads=("tpch:supplier@0.1",),
            cost_models=("hdd",),
            backend="sqlite",
            measurement={"rows": 500, "page_size": 512},
        )
        assert spec.cells()[0].backend == "sqlite"
        assert dict(spec.cells()[0].measurement)["page_size"] == 512

    def test_measurement_requires_an_executing_backend(self):
        with pytest.raises(GridError):
            GridSpec(
                name="bad",
                algorithms=("hillclimb",),
                workloads=("tpch:supplier@0.1",),
                cost_models=("hdd",),
                measurement={"rows": 500},
            )


class TestCacheIdentity:
    def test_estimated_inputs_unchanged(self, workload):
        inputs = cell_inputs(
            "hillclimb", {}, "w", workload, "hdd", HDDCostModel()
        )
        assert "backend" not in inputs
        assert "execution" not in inputs

    def test_measured_inputs_carry_no_page_size(self, workload):
        inputs = cell_inputs(
            "hillclimb", {}, "w", workload, "hdd", HDDCostModel(),
            backend="measured", measurement={"rows": 1_000},
        )
        assert inputs["backend"] == "measured"
        assert "page_size" not in inputs["execution"]
        assert "engine" not in inputs["execution"]

    def test_sqlite_fingerprint_content(self, workload):
        fingerprint = sqlite_execution_fingerprint({"rows": 1_000}, workload)
        assert fingerprint == {
            "engine": "sqlite", "rows": 1_000, "data_seed": 0, "page_size": 4096,
        }
        # No disk, no host identity: a cached timing is a sample.
        assert "disk" not in fingerprint

    def test_sqlite_rows_capped_at_schema(self, workload):
        fingerprint = sqlite_execution_fingerprint({"rows": 1_000_000}, workload)
        assert fingerprint["rows"] == workload.schema.row_count

    def test_backends_never_share_keys(self, workload):
        keys = {
            backend: content_key(
                cell_inputs(
                    "hillclimb", {}, "w", workload, "hdd", HDDCostModel(),
                    backend=backend,
                    measurement=None if backend == "estimated" else {"rows": 1_000},
                )
            )
            for backend in ("estimated", "measured", "sqlite")
        }
        assert len(set(keys.values())) == 3

    def test_page_size_changes_only_sqlite_keys(self, workload):
        def key(backend, measurement):
            return content_key(
                cell_inputs(
                    "hillclimb", {}, "w", workload, "hdd", HDDCostModel(),
                    backend=backend, measurement=measurement,
                )
            )

        assert key("sqlite", {"rows": 1_000}) != key(
            "sqlite", {"rows": 1_000, "page_size": 8192}
        )
        assert key("sqlite", {"rows": 1_000}) == key(
            "sqlite", {"rows": 1_000, "page_size": 4096}
        )
        # The measured fingerprint has no page-size axis at all.
        measured = execution_fingerprint({"rows": 1_000}, HDDCostModel(), workload)
        assert set(measured) == {"rows", "data_seed", "disk"}


class TestCli:
    def test_sqlite_backend_spec(self):
        args = build_parser().parse_args(
            ["--backend", "sqlite", "--measured-rows", "2000",
             "--sqlite-page-size", "8192", "--data-seed", "3"]
        )
        spec = _spec_from_args(args)
        assert spec.backend == "sqlite"
        assert spec.name.endswith("+sqlite")
        measurement = dict(spec.cells()[0].measurement)
        assert measurement == {"rows": 2000, "data_seed": 3, "page_size": 8192}

    def test_page_size_requires_sqlite_backend(self):
        args = build_parser().parse_args(["--sqlite-page-size", "8192"])
        with pytest.raises(GridError, match="--backend sqlite"):
            _spec_from_args(args)

    def test_rows_require_an_executing_backend(self):
        args = build_parser().parse_args(["--measured-rows", "2000"])
        with pytest.raises(GridError, match="measured or sqlite"):
            _spec_from_args(args)

    def test_invalid_page_size_is_a_grid_error(self):
        args = build_parser().parse_args(
            ["--backend", "sqlite", "--sqlite-page-size", "1000"]
        )
        with pytest.raises(GridError, match="page_size"):
            _spec_from_args(args)
