"""Unit tests for the Trojan layouts algorithm."""

import pytest

from repro.algorithms.hillclimb import HillClimbAlgorithm
from repro.algorithms.trojan import TrojanAlgorithm
from repro.core.partitioning import Partitioning


class TestTrojanParameters:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            TrojanAlgorithm(interestingness_threshold=1.5)

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            TrojanAlgorithm(max_group_size=0)

    def test_rejects_bad_candidate_cap(self):
        with pytest.raises(ValueError):
            TrojanAlgorithm(max_candidates=0)

    def test_rejects_bad_enumeration_limit(self):
        with pytest.raises(ValueError):
            TrojanAlgorithm(exhaustive_enumeration_limit=0)


class TestTrojan:
    def test_produces_valid_partitioning(self, lineitem_workload, hdd_model):
        layout = TrojanAlgorithm().compute(lineitem_workload, hdd_model)
        Partitioning(layout.schema, layout.partitions)

    def test_groups_always_co_accessed_attributes(self, intro_workload, hdd_model):
        layout = TrojanAlgorithm().compute(intro_workload, hdd_model)
        names = set(layout.as_names())
        assert ("partkey", "suppkey") in names
        assert ("availqty", "supplycost") in names

    def test_threshold_one_keeps_only_identical_access_groups(
        self, partsupp_workload, hdd_model
    ):
        """With the threshold at 1.0 only perfectly co-accessed groups survive,
        so the layout equals the primary partitions."""
        layout = TrojanAlgorithm(interestingness_threshold=1.0).compute(
            partsupp_workload, hdd_model
        )
        expected = {frozenset(f) for f in partsupp_workload.primary_partitions()}
        assert set(layout.as_sets()) == expected

    def test_lower_threshold_allows_more_grouping(self, lineitem_workload, hdd_model):
        strict = TrojanAlgorithm(interestingness_threshold=0.95).compute(
            lineitem_workload, hdd_model
        )
        loose = TrojanAlgorithm(interestingness_threshold=0.1).compute(
            lineitem_workload, hdd_model
        )
        assert loose.partition_count <= strict.partition_count

    def test_close_to_hillclimb_class_on_lineitem(self, lineitem_workload, hdd_model):
        """The paper reports Trojan within a fraction of a percent of optimal."""
        trojan = TrojanAlgorithm().run(lineitem_workload, hdd_model)
        hillclimb = HillClimbAlgorithm().run(lineitem_workload, hdd_model)
        assert trojan.estimated_cost <= hillclimb.estimated_cost * 1.10

    def test_metadata_reports_pruning(self, lineitem_workload, hdd_model):
        algorithm = TrojanAlgorithm()
        algorithm.run(lineitem_workload, hdd_model)
        metadata = algorithm.last_run_metadata()
        assert metadata["candidates_enumerated"] > 0
        assert metadata["candidates_after_pruning"] <= metadata["candidates_enumerated"]

    def test_seeded_enumeration_for_very_wide_tables(self, hdd_model):
        """Beyond the exhaustive limit the candidate set is query-seeded but the
        algorithm still returns a valid layout."""
        from repro.workload import synthetic

        schema = synthetic.synthetic_table(24, row_count=10_000, random_state=3)
        workload = synthetic.clustered_workload(
            schema, num_clusters=4, queries_per_cluster=3, random_state=3
        )
        layout = TrojanAlgorithm(exhaustive_enumeration_limit=16).compute(
            workload, hdd_model
        )
        Partitioning(layout.schema, layout.partitions)
