"""Unit tests for the workload container and its derived structures."""

import numpy as np
import pytest

from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload, WorkloadError


@pytest.fixture
def schema():
    return TableSchema(
        "t",
        [Column("a", 4), Column("b", 8), Column("c", 16), Column("d", 32)],
        row_count=1000,
    )


@pytest.fixture
def workload(schema):
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=2.0),
            Query("Q2", ["b", "c"]),
            Query("Q3", ["a", "b"]),
        ],
    )


class TestWorkloadConstruction:
    def test_basic_properties(self, workload):
        assert workload.query_count == 3
        assert workload.attribute_count == 4
        assert workload.total_weight == 4.0
        assert len(list(workload)) == 3

    def test_rejects_duplicate_query_names(self, schema):
        with pytest.raises(WorkloadError, match="duplicate"):
            Workload(schema, [Query("Q1", ["a"]), Query("Q1", ["b"])])

    def test_rejects_unknown_attributes(self, schema):
        with pytest.raises(Exception):
            Workload(schema, [Query("Q1", ["nope"])])

    def test_query_lookup(self, workload):
        assert workload.query("Q2").name == "Q2"
        with pytest.raises(WorkloadError):
            workload.query("Q99")

    def test_default_name_derived_from_schema(self, schema):
        assert "t" in Workload(schema, [Query("Q1", ["a"])]).name


class TestDerivedStructures:
    def test_usage_matrix_shape_and_values(self, workload):
        usage = workload.usage_matrix()
        assert usage.shape == (3, 4)
        assert usage[0].tolist() == [1, 1, 0, 0]
        assert usage[1].tolist() == [0, 1, 1, 0]

    def test_weights_vector(self, workload):
        assert workload.weights().tolist() == [2.0, 1.0, 1.0]

    def test_affinity_matrix_symmetry_and_diagonal(self, workload):
        affinity = workload.affinity_matrix()
        assert affinity.shape == (4, 4)
        assert np.allclose(affinity, affinity.T)
        # Attribute b is accessed by all three queries: total weight 4.
        assert affinity[1, 1] == pytest.approx(4.0)
        # a and b co-occur in Q1 (weight 2) and Q3 (weight 1).
        assert affinity[0, 1] == pytest.approx(3.0)
        # a and c never co-occur.
        assert affinity[0, 2] == pytest.approx(0.0)

    def test_attribute_access_weights_match_affinity_diagonal(self, workload):
        affinity = workload.affinity_matrix()
        access = workload.attribute_access_weights()
        assert np.allclose(access, np.diag(affinity))

    def test_referenced_and_unreferenced_attributes(self, workload):
        assert workload.referenced_attributes() == frozenset({0, 1, 2})
        assert workload.unreferenced_attributes() == frozenset({3})

    def test_primary_partitions_group_identical_signatures(self, schema):
        workload = Workload(
            schema,
            [Query("Q1", ["a", "b"]), Query("Q2", ["c"])],
        )
        fragments = workload.primary_partitions()
        assert frozenset({0, 1}) in fragments  # a, b always together
        assert frozenset({2}) in fragments
        assert frozenset({3}) in fragments  # unreferenced attribute
        assert sum(len(f) for f in fragments) == 4

    def test_primary_partitions_cover_all_attributes(self, workload):
        fragments = workload.primary_partitions()
        covered = set()
        for fragment in fragments:
            assert not covered & fragment
            covered |= fragment
        assert covered == set(range(4))

    def test_queries_referencing(self, workload):
        names = [q.name for q in workload.queries_referencing([2])]
        assert names == ["Q2"]


class TestWorkloadSlicing:
    def test_first_k(self, workload):
        first_two = workload.first(2)
        assert [q.name for q in first_two] == ["Q1", "Q2"]

    def test_first_rejects_non_positive(self, workload):
        with pytest.raises(WorkloadError):
            workload.first(0)

    def test_subset_by_name(self, workload):
        subset = workload.subset(["Q3", "Q1"])
        assert [q.name for q in subset] == ["Q1", "Q3"]

    def test_subset_unknown_name_raises(self, workload):
        with pytest.raises(WorkloadError):
            workload.subset(["Q42"])

    def test_scaled_rebinds_schema(self, workload):
        scaled = workload.scaled(2.0)
        assert scaled.schema.row_count == 2000
        assert scaled.query_count == workload.query_count

    def test_with_schema_rejects_different_attributes(self, workload):
        other = TableSchema("other", [Column("x", 4)], 10)
        with pytest.raises(WorkloadError):
            workload.with_schema(other)

    def test_describe_lists_queries(self, workload):
        text = workload.describe()
        assert "Q1" in text and "Q3" in text
