"""Unit tests for the simulated DBMS-X (Table 7 substrate)."""

import pytest

from repro.core.partitioning import Partitioning, column_partitioning, row_partitioning
from repro.storage.compression import DictionaryCompression, VaryingLengthCompression
from repro.storage.dbms_x import DbmsX, DbmsXConfig
from repro.workload import tpch


@pytest.fixture
def workload():
    return tpch.tpch_workload("partsupp", scale_factor=0.5)


class TestDbmsX:
    def test_load_applies_compression_widths(self, workload):
        dbms = DbmsX(DbmsXConfig(compression=VaryingLengthCompression()))
        engine = dbms.load(row_partitioning(workload.schema))
        # The compressed row is narrower than the raw 219-byte PartSupp row.
        assert engine.files[0].row_size < workload.schema.row_size

    def test_excluded_queries_are_skipped(self, workload):
        """Q9 is excluded from the DBMS-X measurement, as in the paper."""
        config = DbmsXConfig(excluded_queries=frozenset({"Q9"}))
        dbms = DbmsX(config)
        with_exclusion = dbms.run_workload(workload, row_partitioning(workload.schema))
        dbms_all = DbmsX(DbmsXConfig(excluded_queries=frozenset()))
        without_exclusion = dbms_all.run_workload(
            workload, row_partitioning(workload.schema)
        )
        assert with_exclusion.elapsed_seconds < without_exclusion.elapsed_seconds

    def test_row_layout_slowest(self, workload):
        dbms = DbmsX()
        row_time = dbms.run_workload(workload, row_partitioning(workload.schema))
        column_time = dbms.run_workload(workload, column_partitioning(workload.schema))
        assert row_time.elapsed_seconds > column_time.elapsed_seconds

    def test_varying_length_penalises_column_groups(self, workload):
        """Under varying-length encoding multi-attribute groups pay intra-group
        reconstruction that pure columns do not."""
        grouped = Partitioning(workload.schema, [[0, 1, 2, 3], [4]])
        column = column_partitioning(workload.schema)
        dbms = DbmsX(DbmsXConfig(compression=VaryingLengthCompression()))
        decode_grouped = dbms._decode_cost(workload, grouped)
        decode_column = dbms._decode_cost(workload, column)
        assert decode_grouped > decode_column == 0.0

    def test_dictionary_reconstruction_cheaper_than_varying(self, workload):
        grouped = Partitioning(workload.schema, [[0, 1, 2, 3], [4]])
        varying = DbmsX(DbmsXConfig(compression=VaryingLengthCompression()))
        dictionary = DbmsX(DbmsXConfig(compression=DictionaryCompression()))
        assert dictionary._decode_cost(workload, grouped) < varying._decode_cost(
            workload, grouped
        )

    def test_run_benchmark_requires_layout_per_table(self, workload):
        dbms = DbmsX()
        with pytest.raises(KeyError):
            dbms.run_benchmark({"partsupp": workload}, {})

    def test_run_benchmark_sums_tables(self, workload):
        dbms = DbmsX()
        layouts = {"partsupp": column_partitioning(workload.schema)}
        total = dbms.run_benchmark({"partsupp": workload}, layouts)
        assert total == pytest.approx(
            dbms.run_workload(workload, layouts["partsupp"]).elapsed_seconds
        )
