"""Unit tests for the wide-sparse telemetry workload generator."""

import pytest

from repro.workload.telemetry import (
    small_telemetry_workload,
    telemetry_schema,
    telemetry_workload,
    wide_telemetry_workload,
)


class TestTelemetrySchema:
    def test_spine_plus_channels(self):
        schema = telemetry_schema(num_channels=5, row_count=1000)
        assert schema.attribute_names[:3] == ("ts", "device_id", "site")
        assert schema.attribute_names[3:] == ("s1", "s2", "s3", "s4", "s5")
        assert schema.row_count == 1000

    def test_channel_widths_come_from_telemetry_encodings(self):
        schema = telemetry_schema(num_channels=50, random_state=3)
        widths = {schema.width_of(i) for i in range(3, schema.attribute_count)}
        assert widths <= {4, 8, 32}

    def test_invalid_shapes_raise(self):
        with pytest.raises(ValueError):
            telemetry_schema(num_channels=0)
        with pytest.raises(ValueError):
            telemetry_workload(num_panels=0)
        with pytest.raises(ValueError):
            telemetry_workload(min_panel_channels=5, max_panel_channels=2)


class TestTelemetryWorkload:
    def test_deterministic_for_a_seed(self):
        first = telemetry_workload(random_state=11)
        second = telemetry_workload(random_state=11)
        assert first.schema == second.schema
        assert [q.attribute_indices for q in first] == [
            q.attribute_indices for q in second
        ]

    def test_every_panel_reads_the_spine(self):
        workload = telemetry_workload(num_channels=20, num_panels=8, random_state=2)
        for query in workload:
            assert {0, 1, 2} <= query.index_set

    def test_footprints_are_sparse(self):
        workload = telemetry_workload(
            num_channels=40, num_panels=10, max_panel_channels=5, random_state=0
        )
        # No panel reads more than the spine plus its cluster and one outlier.
        for query in workload:
            assert len(query.index_set) <= 3 + 5 + 1
        # Most channels are untouched — the wide-sparse property.
        assert len(workload.unreferenced_attributes()) > 40 // 3

    def test_hot_panels_carry_the_weight(self):
        workload = telemetry_workload(
            num_panels=6, hot_panels=2, hot_weight=10.0, random_state=4
        )
        weights = [q.weight for q in workload]
        assert weights[:2] == [10.0, 10.0]
        assert weights[2:] == [1.0] * 4

    def test_presets(self):
        small = small_telemetry_workload()
        assert small.attribute_count == 13
        assert small.name == "telemetry-small"
        wide = wide_telemetry_workload()
        assert wide.attribute_count == 43
        assert [q.attribute_indices for q in small_telemetry_workload()] == [
            q.attribute_indices for q in small
        ]
