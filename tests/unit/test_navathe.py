"""Unit tests for Navathe's algorithm."""

import numpy as np
import pytest

from repro.algorithms.navathe import (
    NavatheAlgorithm,
    affinity_split_gain,
    query_split_gain,
)
from repro.core.partitioning import Partitioning
from repro.workload.query import Query, ResolvedQuery
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload


class TestSplitGains:
    def test_affinity_gain_prefers_clean_separation(self):
        # Two blocks with no cross affinity: splitting between them is best.
        affinity = np.array(
            [
                [4.0, 4.0, 0.0, 0.0],
                [4.0, 4.0, 0.0, 0.0],
                [0.0, 0.0, 4.0, 4.0],
                [0.0, 0.0, 4.0, 4.0],
            ]
        )
        clean = affinity_split_gain(affinity, [0, 1], [2, 3])
        dirty = affinity_split_gain(affinity, [0], [1, 2, 3])
        assert clean > dirty
        assert clean > 0

    def test_affinity_gain_not_positive_when_everything_co_accessed(self):
        """A uniformly co-accessed attribute set offers no profitable split."""
        affinity = np.full((4, 4), 2.0)
        assert affinity_split_gain(affinity, [0, 1], [2, 3]) <= 0
        assert affinity_split_gain(affinity, [0], [1, 2, 3]) <= 0

    def test_query_gain_counts_exclusive_queries(self):
        queries = [
            ResolvedQuery("Q1", (0, 1)),
            ResolvedQuery("Q2", (2, 3)),
            ResolvedQuery("Q3", (1, 2)),
        ]
        gain = query_split_gain(queries, [0, 1], [2, 3])
        # CTQ = 1 (Q1), CBQ = 1 (Q2), COQ = 1 (Q3): 1*1 - 1 = 0.
        assert gain == pytest.approx(0.0)


class TestNavathe:
    def test_rejects_unknown_objective(self):
        with pytest.raises(ValueError):
            NavatheAlgorithm(split_objective="entropy")

    def test_splits_cleanly_separable_workload(self, hdd_model):
        schema = TableSchema(
            "t", [Column(n, 8) for n in ("a", "b", "c", "d")], row_count=100_000
        )
        workload = Workload(
            schema,
            [Query("Q1", ["a", "b"]), Query("Q2", ["c", "d"]), Query("Q3", ["a", "b"])],
        )
        layout = NavatheAlgorithm().compute(workload, hdd_model)
        groups = set(layout.as_names())
        assert ("a", "b") in groups
        assert ("c", "d") in groups

    def test_partitions_are_contiguous_in_bea_order(self, lineitem_workload, hdd_model):
        algorithm = NavatheAlgorithm()
        layout = algorithm.compute(lineitem_workload, hdd_model)
        order = algorithm.last_run_metadata()["bea_order"]
        position = {attribute: i for i, attribute in enumerate(order)}
        for partition in layout:
            positions = sorted(position[a] for a in partition.attributes)
            assert positions == list(range(positions[0], positions[0] + len(positions)))

    def test_produces_valid_partitioning_on_tpch(self, lineitem_workload, hdd_model):
        layout = NavatheAlgorithm().compute(lineitem_workload, hdd_model)
        Partitioning(layout.schema, layout.partitions)

    def test_cost_objective_is_at_least_as_good(self, lineitem_workload, hdd_model):
        """The ablation variant (cost-driven splits) never does worse than the
        original affinity objective, because it uses the evaluation metric
        directly."""
        affinity = NavatheAlgorithm(split_objective="affinity").run(
            lineitem_workload, hdd_model
        )
        cost = NavatheAlgorithm(split_objective="cost").run(
            lineitem_workload, hdd_model
        )
        assert cost.estimated_cost <= affinity.estimated_cost * 1.0001

    def test_metadata_contains_segments(self, customer_workload, hdd_model):
        algorithm = NavatheAlgorithm()
        algorithm.run(customer_workload, hdd_model)
        metadata = algorithm.last_run_metadata()
        assert metadata["split_objective"] == "affinity"
        total = sum(len(segment) for segment in metadata["segments"])
        assert total == customer_workload.attribute_count
