"""Unit tests for the SQLite executor: materialisation, timing, lifecycle."""

import os

import pytest

from repro.core.partitioning import (
    Partitioning,
    column_partitioning,
    row_partitioning,
)
from repro.cost.hdd import HDDCostModel
from repro.engine_x.executor import (
    DEFAULT_PAGE_SIZE,
    PAGE_SIZES,
    SQLiteExecutor,
    TMPDIR_ENV_VAR,
    resolve_database_dir,
    trimmed_mean,
)
from repro.engine_x.sql import RID_COLUMN, group_table_name, quote_identifier
from repro.storage.data import generate_table_data
from repro.workload.query import Query
from repro.workload.schema import Column, TableSchema
from repro.workload.workload import Workload

ROWS = 500


@pytest.fixture
def workload():
    schema = TableSchema(
        "exu",
        [Column("a", 8, "bigint"), Column("b", 8, "double"),
         Column("c", 24, "char"), Column("d", 4, "integer")],
        ROWS,
    )
    return Workload(
        schema,
        [
            Query("Q1", ["a", "b"], weight=2.0),
            Query("Q2", ["c"]),
            Query("Q3", ["a", "c", "d"], weight=0.5),
        ],
        name="executor-unit",
    )


@pytest.fixture
def grouped(workload):
    schema = workload.schema
    return Partitioning(
        schema,
        [[schema.index_of("a"), schema.index_of("b")],
         [schema.index_of("c")],
         [schema.index_of("d")]],
    )


class TestTrimmedMean:
    def test_plain_mean_below_three_samples(self):
        assert trimmed_mean([4.0]) == 4.0
        assert trimmed_mean([2.0, 6.0]) == 4.0

    def test_drops_min_and_max(self):
        assert trimmed_mean([100.0, 1.0, 2.0, 3.0, 0.0]) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            trimmed_mean([])


class TestDatabaseDir:
    def test_explicit_argument_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TMPDIR_ENV_VAR, "/elsewhere")
        assert resolve_database_dir(str(tmp_path)) == str(tmp_path)

    def test_environment_beats_system_default(self, monkeypatch):
        monkeypatch.setenv(TMPDIR_ENV_VAR, "/from-env")
        assert resolve_database_dir() == "/from-env"

    def test_system_default_otherwise(self, monkeypatch, tmp_path):
        monkeypatch.delenv(TMPDIR_ENV_VAR, raising=False)
        monkeypatch.setenv("TMPDIR", str(tmp_path))
        import tempfile

        tempfile.tempdir = None  # force re-resolution from the environment
        try:
            assert resolve_database_dir() == str(tmp_path)
        finally:
            tempfile.tempdir = None


class TestMaterialisation:
    def test_one_table_per_group_with_shared_rid(self, grouped, tmp_path):
        with SQLiteExecutor(grouped, rows=ROWS, database_dir=str(tmp_path)) as ex:
            names = {
                row[0]
                for row in ex.connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            assert names == {group_table_name(ex.schema, i) for i in range(3)}
            for i in range(3):
                table = quote_identifier(group_table_name(ex.schema, i))
                info = ex.connection.execute(f"PRAGMA table_info({table})").fetchall()
                assert info[0][1] == RID_COLUMN
                count = ex.connection.execute(
                    f"SELECT count(*) FROM {table}"
                ).fetchone()[0]
                assert count == ROWS

    def test_page_size_is_applied(self, grouped, tmp_path):
        for page_size in (512, 8192):
            with SQLiteExecutor(
                grouped, rows=100, page_size=page_size, database_dir=str(tmp_path)
            ) as ex:
                actual = ex.connection.execute("PRAGMA page_size").fetchone()[0]
                assert actual == page_size

    def test_without_rowid_reaches_the_ddl(self, grouped, tmp_path):
        with SQLiteExecutor(
            grouped, rows=100, without_rowid=True, database_dir=str(tmp_path)
        ) as ex:
            ddl = [
                row[0]
                for row in ex.connection.execute(
                    "SELECT sql FROM sqlite_master WHERE type = 'table'"
                )
            ]
            assert all(statement.endswith("WITHOUT ROWID") for statement in ddl)

    def test_rows_capped_at_schema_row_count(self, grouped, tmp_path):
        with SQLiteExecutor(
            grouped, rows=10 * ROWS, database_dir=str(tmp_path)
        ) as ex:
            assert ex.rows == ROWS

    def test_invalid_parameters_are_rejected(self, grouped, tmp_path):
        with pytest.raises(ValueError):
            SQLiteExecutor(grouped, rows=100, page_size=1000)
        with pytest.raises(ValueError):
            SQLiteExecutor(grouped, rows=100, repeats=0)
        with pytest.raises(ValueError):
            SQLiteExecutor(grouped, rows=0)
        assert DEFAULT_PAGE_SIZE in PAGE_SIZES

    def test_mismatched_data_is_rejected(self, grouped, workload, tmp_path):
        short = generate_table_data(
            workload.schema.with_row_count(ROWS - 1), random_state=0
        )
        with pytest.raises(ValueError):
            SQLiteExecutor(grouped, rows=ROWS, data=short, database_dir=str(tmp_path))


class TestExecution:
    def test_workload_run_accounting(self, grouped, workload, tmp_path):
        with SQLiteExecutor(
            grouped, rows=ROWS, repeats=3, database_dir=str(tmp_path)
        ) as ex:
            run = ex.execute_workload(workload)
        by_query = {r.query: r for r in run.runs}
        assert by_query["Q1"].groups_read == 1  # a, b share a group
        assert by_query["Q2"].groups_read == 1
        assert by_query["Q3"].groups_read == 3
        assert by_query["Q1"].rows_scanned == ROWS
        assert by_query["Q3"].rows_scanned == 3 * ROWS
        assert by_query["Q1"].bytes_scanned == 16 * ROWS
        assert by_query["Q3"].bytes_scanned == (16 + 24 + 4) * ROWS
        assert run.rows_scanned == sum(r.rows_scanned for r in run.runs)
        # Weighted total: Q1 counts twice, Q3 half.
        expected = (
            2.0 * by_query["Q1"].seconds
            + by_query["Q2"].seconds
            + 0.5 * by_query["Q3"].seconds
        )
        assert run.elapsed_seconds == pytest.approx(expected)
        assert set(run.seconds_by_query()) == {"Q1", "Q2", "Q3"}
        assert "sqlite" in run.describe()

    def test_row_and_column_layouts_share_results(self, workload, tmp_path):
        data = generate_table_data(
            workload.schema.with_row_count(ROWS), random_state=0
        )
        runs = {}
        for label, layout in (
            ("row", row_partitioning(workload.schema)),
            ("column", column_partitioning(workload.schema)),
        ):
            with SQLiteExecutor(
                layout, rows=ROWS, data=data, repeats=1, database_dir=str(tmp_path)
            ) as ex:
                runs[label] = ex.execute_workload(workload)
        for r_row, r_col in zip(runs["row"].runs, runs["column"].runs):
            assert r_row.result_rows == r_col.result_rows == ROWS

    def test_foreign_workload_is_rejected(self, grouped, tmp_path):
        other_schema = TableSchema("other", [Column("x", 4)], ROWS)
        other = Workload(other_schema, [Query("Q1", ["x"])], name="other")
        with SQLiteExecutor(grouped, rows=100, database_dir=str(tmp_path)) as ex:
            with pytest.raises(ValueError):
                ex.execute_workload(other)

    def test_predicted_costs_use_the_measured_scale(self, grouped, workload, tmp_path):
        model = HDDCostModel()
        with SQLiteExecutor(grouped, rows=ROWS, database_dir=str(tmp_path)) as ex:
            predicted = ex.predicted_cost(workload, model)
            per_query = ex.predicted_query_costs(workload, model)
        scaled = workload.with_schema(workload.schema.with_row_count(ROWS))
        assert predicted == pytest.approx(
            model.workload_cost(scaled, ex.partitioning)
        )
        assert set(per_query) == {"Q1", "Q2", "Q3"}


class TestLifecycle:
    def test_close_removes_the_database_file(self, grouped, tmp_path):
        ex = SQLiteExecutor(grouped, rows=100, database_dir=str(tmp_path))
        path = ex.database_path
        assert os.path.exists(path)
        ex.close()
        assert not os.path.exists(path)
        with pytest.raises(ValueError):
            ex.connection

    def test_close_is_idempotent(self, grouped, tmp_path):
        ex = SQLiteExecutor(grouped, rows=100, database_dir=str(tmp_path))
        ex.close()
        ex.close()

    def test_unusable_directory_raises_at_construction(self, grouped, tmp_path):
        decoy = tmp_path / "not-a-directory"
        decoy.write_text("occupied")
        with pytest.raises(OSError):
            SQLiteExecutor(grouped, rows=100, database_dir=str(decoy))
