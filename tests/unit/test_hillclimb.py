"""Unit tests for the HillClimb algorithm."""

import pytest

from repro.algorithms.brute_force import BruteForceAlgorithm
from repro.algorithms.hillclimb import HillClimbAlgorithm
from repro.core.partitioning import column_partitioning
from repro.cost.hdd import HDDCostModel
from repro.workload import synthetic


class TestHillClimb:
    def test_matches_brute_force_on_small_tables(self, partsupp_workload, hdd_model):
        """Paper Lesson 1: HillClimb finds the brute-force-optimal layouts."""
        hillclimb = HillClimbAlgorithm().run(partsupp_workload, hdd_model)
        brute = BruteForceAlgorithm().run(partsupp_workload, hdd_model)
        assert hillclimb.estimated_cost == pytest.approx(brute.estimated_cost, rel=1e-9)

    def test_matches_brute_force_on_customer(self, customer_workload, hdd_model):
        hillclimb = HillClimbAlgorithm().run(customer_workload, hdd_model)
        brute = BruteForceAlgorithm().run(customer_workload, hdd_model)
        assert hillclimb.estimated_cost == pytest.approx(brute.estimated_cost, rel=1e-9)

    def test_never_worse_than_column_layout(self, lineitem_workload, hdd_model):
        """Merging starts from the column layout and only accepts improvements."""
        result = HillClimbAlgorithm().run(lineitem_workload, hdd_model)
        column_cost = hdd_model.workload_cost(
            lineitem_workload, column_partitioning(lineitem_workload.schema)
        )
        assert result.estimated_cost <= column_cost * 1.0001

    def test_merges_co_accessed_attributes(self, intro_workload, hdd_model):
        layout = HillClimbAlgorithm().compute(intro_workload, hdd_model)
        names = layout.as_names()
        assert ("partkey", "suppkey") in names

    def test_metadata_counts_merges(self, intro_workload, hdd_model):
        algorithm = HillClimbAlgorithm()
        algorithm.run(intro_workload, hdd_model)
        metadata = algorithm.last_run_metadata()
        assert metadata["merges"] >= 1
        assert metadata["iterations"] >= metadata["merges"]

    def test_dictionary_variant_produces_same_layout(self, partsupp_workload, hdd_model):
        """The ablation: with or without the cost dictionary the result is identical."""
        plain = HillClimbAlgorithm(use_cost_dictionary=False).run(
            partsupp_workload, hdd_model
        )
        with_dictionary = HillClimbAlgorithm(use_cost_dictionary=True).run(
            partsupp_workload, hdd_model
        )
        assert plain.partitioning == with_dictionary.partitioning

    def test_merge_filters_by_index_not_identity(self):
        """Regression: the old identity-based filter double-kept a group when
        equal-but-distinct frozensets were passed; merging by index must drop
        exactly the two requested positions, even with equal groups present."""
        duplicate_a = frozenset({0})
        duplicate_b = frozenset({0})
        assert duplicate_a is not duplicate_b
        groups = [duplicate_a, duplicate_b, frozenset({1}), frozenset({2})]
        merged = HillClimbAlgorithm._merge(groups, 1, 2)
        assert merged == [frozenset({0}), frozenset({2}), frozenset({0, 1})]
        # The copy at index 0 must survive; the copy at index 1 must be gone.
        assert merged.count(frozenset({0})) == 1

    def test_merge_of_adjacent_positions(self):
        groups = [frozenset({0, 1}), frozenset({2}), frozenset({3})]
        merged = HillClimbAlgorithm._merge(groups, 0, 1)
        assert sorted(merged, key=sorted) == [frozenset({0, 1, 2}), frozenset({3})]

    def test_naive_costing_produces_identical_layout(self, lineitem_workload, hdd_model):
        """The pre-kernel costing path (the benchmark's comparison flag) and
        the memoized evaluator must pick bit-identical layouts."""
        fast = HillClimbAlgorithm().run(lineitem_workload, hdd_model)
        naive = HillClimbAlgorithm(naive_costing=True).run(lineitem_workload, hdd_model)
        assert fast.partitioning == naive.partitioning
        assert fast.estimated_cost == naive.estimated_cost

    def test_fragmented_workload_stays_columnar(self, hdd_model):
        """With disjoint query footprints there is nothing to merge except
        unreferenced attributes, so the layout stays close to columnar."""
        schema = synthetic.synthetic_table(8, row_count=100_000, random_state=2)
        workload = synthetic.fragmented_workload(
            schema, 4, attributes_per_query=2, random_state=2
        )
        layout = HillClimbAlgorithm().compute(workload, hdd_model)
        # Each query footprint (2 attributes) may merge, but footprints of
        # different queries must not (that would only add unnecessary reads).
        for query in workload:
            for partition in layout.referenced_partitions(query):
                assert partition.attributes <= query.index_set
