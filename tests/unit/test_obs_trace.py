"""Unit tests for :mod:`repro.obs.trace` and the trace summariser.

Covers the deterministic span-ID scheme, the disabled-by-default no-op path,
span nesting and error capture, the worker-side buffer + ``adopt_spans``
re-parenting, I/O degradation, and ``summarize``/``render_summary`` over a
synthetic trace.
"""

import json

import pytest

from repro.obs import trace as obs_trace
from repro.obs.summary import render_summary, summarize
from repro.obs.trace import (
    SpanBuffer,
    TraceWriter,
    adopt_spans,
    collecting,
    collection_env,
    collection_requested,
    emit_metrics,
    emit_span,
    enabled,
    event,
    read_trace,
    root_id,
    span,
    span_id,
    task_seed,
    timed,
    tracing,
)


class TestDeterministicIds:
    def test_span_ids_are_stable_and_structural(self):
        assert span_id("p", "a", 0) == span_id("p", "a", 0)
        assert span_id("p", "a", 0) != span_id("p", "a", 1)
        assert span_id("p", "a", 0) != span_id("p", "b", 0)
        assert root_id("run") == root_id("run")
        assert task_seed("cell", 2) == "cell#2"

    def test_same_run_produces_the_same_tree(self, tmp_path):
        def run(path):
            with tracing(str(path), "same-run"):
                with span("outer"):
                    with span("inner"):
                        pass
                    with span("inner"):
                        pass
            _, records = read_trace(str(path))
            return [(r["id"], r["parent"], r["name"]) for r in records]

        assert run(tmp_path / "a.jsonl") == run(tmp_path / "b.jsonl")


class TestDisabledPath:
    def test_span_is_a_shared_noop_when_off(self):
        assert not enabled()
        first = span("anything", key="value")
        second = span("other")
        assert first is second
        with first as live:
            live.set(more="attrs")  # must not raise

    def test_event_and_emit_are_noops_when_off(self):
        event("nothing", cell="x")
        assert emit_span("nothing", 1.0) is None
        emit_metrics({"counters": {}})

    def test_timed_measures_wall_even_when_off(self):
        with timed("region") as timer:
            sum(range(1000))
        assert timer.wall > 0.0
        assert timer.id is None  # no span was recorded


class TestTracing:
    def test_meta_record_comes_first_with_extra_fields(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path), "my-run", {"cells": 4}):
            pass
        meta, records = read_trace(str(path))
        assert meta["run"] == "my-run"
        assert meta["root"] == root_id("my-run")
        assert meta["cells"] == 4
        assert records == []

    def test_spans_nest_with_parent_ids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path), "nest"):
            with span("outer", level=1) as outer:
                with span("inner") as inner:
                    pass
        _, records = read_trace(str(path))
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent"] == root_id("nest")
        assert by_name["outer"]["attrs"] == {"level": 1}
        assert by_name["outer"]["status"] == "ok"
        # Inner closes before outer, so it is written first.
        assert [r["name"] for r in records] == ["inner", "outer"]

    def test_exception_marks_the_span_and_propagates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path), "err"):
            with pytest.raises(RuntimeError):
                with span("doomed"):
                    raise RuntimeError("boom")
        _, records = read_trace(str(path))
        (record,) = records
        assert record["status"] == "error"
        assert record["error"] == "RuntimeError: boom"

    def test_set_attaches_attributes_mid_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path), "attrs"):
            with span("cell") as live:
                live.set(result="fine", count=2)
        _, records = read_trace(str(path))
        assert records[0]["attrs"] == {"result": "fine", "count": 2}

    def test_events_carry_the_enclosing_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path), "ev"):
            with span("outer") as outer:
                event("hit", cell="a/b/c")
        _, records = read_trace(str(path))
        assert records[0]["type"] == "event"
        assert records[0]["parent"] == outer.id
        assert records[0]["attrs"] == {"cell": "a/b/c"}

    def test_emit_span_synthesizes_under_the_current_span(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with tracing(str(path), "synth"):
            synthesized = emit_span(
                "grid.cell", 1.25, status="error",
                error="WorkerCrash: exit code 86", cell="x", synthesized=True,
            )
        _, records = read_trace(str(path))
        (record,) = records
        assert record["id"] == synthesized
        assert record["parent"] == root_id("synth")
        assert record["wall"] == 1.25
        assert record["status"] == "error"
        assert record["error"] == "WorkerCrash: exit code 86"
        assert record["attrs"]["synthesized"] is True

    def test_state_is_restored_after_tracing(self, tmp_path):
        with tracing(str(tmp_path / "t.jsonl"), "run"):
            assert enabled()
        assert not enabled()
        assert span("x") is span("y")  # back to the shared no-op


class TestWorkerCollection:
    def test_collecting_buffers_and_adopt_reparents(self, tmp_path):
        seed = task_seed("alg/wl/cm", 1)
        with collecting(seed) as buffer:
            with span("grid.cell", cell="alg/wl/cm"):
                with span("algorithm.compute"):
                    pass
        assert [r["name"] for r in buffer.records] == [
            "algorithm.compute", "grid.cell",
        ]
        assert buffer.records[1]["parent"] == root_id(seed)

        # Supervisor side: adopt the shipped records under a live span.
        path = tmp_path / "t.jsonl"
        with tracing(str(path), "parent-run"):
            with span("grid.execute") as execute:
                written = adopt_spans(buffer.records, seed)
        assert written == 2
        _, records = read_trace(str(path))
        by_name = {r["name"]: r for r in records}
        assert by_name["grid.cell"]["parent"] == execute.id
        # Deeper records keep their worker-side parent link.
        assert by_name["algorithm.compute"]["parent"] == by_name["grid.cell"]["id"]

    def test_buffer_survives_an_exception_in_the_block(self):
        with pytest.raises(ValueError):
            with collecting("seed") as buffer:
                with span("grid.cell"):
                    raise ValueError("mid-span failure")
        (record,) = buffer.records
        assert record["status"] == "error"

    def test_adopt_is_a_noop_without_a_sink(self):
        assert adopt_spans([{"parent": "x"}], "seed") == 0

    def test_collection_env_round_trip(self, monkeypatch):
        monkeypatch.delenv(obs_trace.COLLECT_ENV_VAR, raising=False)
        assert not collection_requested()
        with collection_env():
            assert collection_requested()
        assert not collection_requested()


class TestTraceWriterDegradation:
    def test_write_failure_warns_once_and_drops(self, tmp_path, capsys):
        writer = TraceWriter(str(tmp_path / "t.jsonl"), "run")
        writer._handle.close()  # force OSError on subsequent writes
        writer.write({"type": "event", "name": "a"})
        writer.write({"type": "event", "name": "b"})
        assert writer.dropped == 2
        err = capsys.readouterr().err
        assert err.count("trace write") == 1
        writer.close()  # second close must not raise


class TestReadTrace:
    def test_rejects_non_trace_files(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text('{"type":"span"}\n')
        with pytest.raises(ValueError):
            read_trace(str(path))

    def test_rejects_unsupported_format(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"type":"meta","format":99,"run":"x","root":"r"}\n')
        with pytest.raises(ValueError):
            read_trace(str(path))

    def test_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(
            '{"type":"meta","format":1,"run":"x","root":"r"}\n'
            "garbage not json\n"
            '{"type":"event","name":"ok"}\n'
            '{"type":"span","name":"trunc'  # torn final line (crash mid-write)
        )
        meta, records = read_trace(str(path))
        assert meta["run"] == "x"
        assert [r["name"] for r in records] == ["ok"]


class TestSummarize:
    def _write_trace(self, path):
        with tracing(str(path), "summary-run", {"cells": 2}):
            with timed("grid.resolve"):
                pass
            with timed("grid.cache-scan"):
                event("grid.cache-hit", cell="cached/wl/cm")
            with timed("grid.execute"):
                with span("grid.cell", cell="good/wl/cm", attempt=1):
                    pass
                event("grid.retry", cell="flaky/wl/cm", attempt=1)
                with span("grid.cell", cell="flaky/wl/cm", attempt=2):
                    pass
                event("grid.worker-crash", cell="dead/wl/cm", attempt=1)
                emit_span(
                    "grid.cell", 0.5, status="error",
                    error="WorkerCrash: exit code 86",
                    cell="dead/wl/cm", synthesized=True,
                )
            emit_metrics(
                {
                    "counters": {
                        "grid.cache.hits": 1,
                        "grid.retry.attempts": 1,
                        "grid.worker.crashes": 1,
                        "cost.evaluator.memo.hits": 4,
                        "cost.evaluator.memo.misses": 6,
                    },
                    "gauges": {},
                    "histograms": {},
                }
            )

    def test_summarize_attributes_everything(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        digest = summarize(str(path))
        assert digest.meta["run"] == "summary-run"
        assert list(digest.phases) == [
            "grid.resolve", "grid.cache-scan", "grid.execute",
        ]
        assert digest.cache_hits == 1
        assert digest.cells["good/wl/cm"].status == "ok"
        flaky = digest.cells["flaky/wl/cm"]
        assert flaky.retries == 1 and flaky.status == "ok"
        dead = digest.cells["dead/wl/cm"]
        assert dead.crashes == 1 and dead.status == "error"
        assert dead.errors == ["WorkerCrash: exit code 86"]
        assert digest.counter("grid.retry.attempts") == 1
        assert [c.label for c in digest.failed_cells] == ["dead/wl/cm"]

    def test_render_summary_is_readable(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        text = render_summary(summarize(str(path)))
        assert "run=summary-run" in text
        assert "grid.execute" in text
        assert "1 cached" in text
        assert "evaluator memo 4 hits / 6 misses" in text
        assert "1 retries · 1 worker crashes" in text
        assert "dead/wl/cm: 1 crashes; quarantined: WorkerCrash: exit code 86" in text

    def test_summary_cli_round_trip(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        path = tmp_path / "t.jsonl"
        self._write_trace(path)
        assert obs_main(["summary", str(path)]) == 0
        assert "run=summary-run" in capsys.readouterr().out
        assert obs_main(["summary", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache_hits"] == 1
        assert payload["cells"]["dead/wl/cm"]["crashes"] == 1

    def test_summary_cli_reports_bad_inputs(self, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        assert obs_main(["summary", str(tmp_path / "missing.jsonl")]) == 1
        assert "no such file" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a trace\n")
        assert obs_main(["summary", str(bad)]) == 1
        assert "error" in capsys.readouterr().err
