"""Unit tests for the Star Schema Benchmark definitions."""

import pytest

from repro.workload import ssb


class TestSsbSchemas:
    def test_all_five_tables_present(self):
        assert set(ssb.table_names()) == {
            "lineorder", "customer", "supplier", "part", "date",
        }

    def test_lineorder_has_seventeen_attributes(self):
        assert ssb.table_schema("lineorder").attribute_count == 17

    def test_date_table_does_not_scale(self):
        assert ssb.table_schema("date", scale_factor=100).row_count == 2556

    def test_lineorder_scales(self):
        sf1 = ssb.table_schema("lineorder", scale_factor=1).row_count
        sf10 = ssb.table_schema("lineorder", scale_factor=10).row_count
        assert sf10 == pytest.approx(10 * sf1, rel=0.01)

    def test_unknown_table_raises(self):
        with pytest.raises(KeyError):
            ssb.table_schema("facts")

    def test_database_contains_all_tables(self):
        assert len(ssb.ssb_database(scale_factor=1)) == 5


class TestSsbWorkloads:
    def test_thirteen_queries_defined(self):
        assert len(ssb.SSB_QUERY_ORDER) == 13

    def test_footprints_reference_existing_attributes(self):
        for query_name, footprint in ssb.SSB_QUERY_FOOTPRINTS.items():
            for table, attributes in footprint.items():
                schema = ssb.table_schema(table)
                for attribute in attributes:
                    schema.index_of(attribute)

    def test_every_query_touches_lineorder(self):
        workload = ssb.ssb_workload("lineorder", scale_factor=1)
        assert workload.query_count == 13

    def test_flight_one_touches_only_lineorder_and_date(self):
        for name in ("Q1.1", "Q1.2", "Q1.3"):
            assert set(ssb.SSB_QUERY_FOOTPRINTS[name]) == {"lineorder", "date"}

    def test_workloads_cover_all_tables(self):
        workloads = ssb.ssb_workloads(scale_factor=1)
        assert set(workloads) == set(ssb.table_names())

    def test_ssb_access_patterns_less_fragmented_than_tpch(self):
        """SSB queries share footprints heavily (the paper's motivation for Table 5)."""
        workload = ssb.ssb_workload("lineorder", scale_factor=1)
        fragments = workload.primary_partitions()
        # Far fewer primary partitions than attributes means many attributes
        # are always co-accessed.
        assert len(fragments) < workload.attribute_count
