"""Unit tests for service-level fault injection (REPRO_SERVICE_FAULTS)."""

import os
import time

import pytest

from repro.service import faults as service_faults
from repro.service.faults import (
    ENV_VAR,
    ServiceFault,
    ServiceFaultPlan,
    ServiceFaultPlanError,
    WorkerThreadDeath,
)


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceFaultPlanError):
            ServiceFault(kind="explode")

    def test_slow_needs_positive_seconds(self):
        with pytest.raises(ServiceFaultPlanError):
            ServiceFault(kind="slow", seconds=0)

    def test_times_must_be_positive_or_none(self):
        with pytest.raises(ServiceFaultPlanError):
            ServiceFault(kind="oserror", times=0)
        assert ServiceFault(kind="oserror", times=None).times is None

    def test_unknown_site_rejected(self):
        with pytest.raises(ServiceFaultPlanError):
            ServiceFaultPlan({"journal.vanish": ServiceFault(kind="oserror")})

    def test_unknown_fault_fields_rejected(self):
        with pytest.raises(ServiceFaultPlanError):
            ServiceFault.from_dict({"kind": "oserror", "explosions": 3})

    def test_malformed_json_rejected(self):
        with pytest.raises(ServiceFaultPlanError):
            ServiceFaultPlan.from_json("{not json")


class TestEnvRoundTrip:
    def test_json_round_trip_preserves_the_plan(self):
        plan = ServiceFaultPlan.from_mapping(
            {
                "journal.append": {"kind": "oserror", "times": 2},
                "job.start": {"kind": "slow", "seconds": 0.5},
            }
        )
        assert ServiceFaultPlan.from_json(plan.to_json()) == plan
        assert plan.sites() == ("job.start", "journal.append")

    def test_injected_installs_and_restores(self):
        previous = os.environ.get(ENV_VAR)
        with service_faults.injected({"job.start": {"kind": "oserror"}}) as plan:
            assert plan is not None
            assert os.environ[ENV_VAR] == plan.to_json()
            assert service_faults.active_plan() == plan
        assert os.environ.get(ENV_VAR) == previous

    def test_active_plan_raises_loudly_on_garbage(self):
        with pytest.raises(ServiceFaultPlanError):
            with service_faults.injected(None):
                os.environ[ENV_VAR] = "{broken"
                try:
                    service_faults.active_plan()
                finally:
                    os.environ.pop(ENV_VAR, None)


class TestTriggering:
    def test_no_plan_is_a_noop(self):
        with service_faults.injected(None):
            service_faults.maybe_trigger("journal.append")  # must not raise

    def test_oserror_fires_with_message(self):
        plan = {"journal.append": {"kind": "oserror", "message": "disk gone"}}
        with service_faults.injected(plan):
            with pytest.raises(OSError, match="disk gone"):
                service_faults.maybe_trigger("journal.append")

    def test_die_raises_a_base_exception(self):
        with service_faults.injected({"job.start": {"kind": "die"}}):
            with pytest.raises(WorkerThreadDeath):
                service_faults.maybe_trigger("job.start")
        assert not issubclass(WorkerThreadDeath, Exception)

    def test_slow_sleeps_roughly_the_configured_time(self):
        plan = {"job.start": {"kind": "slow", "seconds": 0.05}}
        with service_faults.injected(plan):
            started = time.perf_counter()
            service_faults.maybe_trigger("job.start")
            assert time.perf_counter() - started >= 0.04

    def test_times_bounds_the_window_deterministically(self):
        plan = {"journal.append": {"kind": "oserror", "times": 2}}
        with service_faults.injected(plan):
            for _ in range(2):
                with pytest.raises(OSError):
                    service_faults.maybe_trigger("journal.append")
            # Third and later occurrences pass clean.
            service_faults.maybe_trigger("journal.append")
            service_faults.maybe_trigger("journal.append")

    def test_other_sites_are_untouched(self):
        with service_faults.injected({"job.start": {"kind": "oserror"}}):
            service_faults.maybe_trigger("journal.append")  # must not raise

    def test_injected_resets_occurrences_between_blocks(self):
        plan = {"journal.append": {"kind": "oserror", "times": 1}}
        for _ in range(2):  # each block gets its own times window
            with service_faults.injected(plan):
                with pytest.raises(OSError):
                    service_faults.maybe_trigger("journal.append")
                service_faults.maybe_trigger("journal.append")
